package telemetry

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	if s := r.Scope("x"); s != nil {
		t.Fatal("nil registry scope must stay nil")
	}
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must stay zero")
	}
	g := r.Gauge("g")
	g.Set(7)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay zero")
	}
	tm := r.Timer("t")
	tm.Observe(time.Second)
	tm.Start()()
	if tm.Count() != 0 || tm.Total() != 0 || tm.Mean() != 0 || tm.Max() != 0 {
		t.Fatal("nil timer must stay zero")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatal("nil registry must snapshot empty")
	}
	var p *Progress
	p.Add(1)
	p.StartItem("a")
	p.DoneItem("a", nil)
	p.Finish()
	var prof *Profiler
	if err := prof.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryScopesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("quanta").Add(2)
	sim := r.Scope("sim")
	sim.Counter("quanta").Add(5)
	sim.Scope("deep").Gauge("depth").Set(-3)
	tm := r.Timer("wall")
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)

	if got := r.Counter("quanta").Value(); got != 2 {
		t.Fatalf("root counter %d", got)
	}
	if got := sim.Counter("quanta").Value(); got != 5 {
		t.Fatalf("scoped counter %d", got)
	}
	if tm.Mean() != 20*time.Millisecond || tm.Max() != 30*time.Millisecond {
		t.Fatalf("timer mean %v max %v", tm.Mean(), tm.Max())
	}

	snap := r.Snapshot()
	byName := map[string]Metric{}
	for i, m := range snap {
		byName[m.Name] = m
		if i > 0 && snap[i-1].Name >= m.Name {
			t.Fatalf("snapshot not sorted: %q >= %q", snap[i-1].Name, m.Name)
		}
	}
	if byName["sim.quanta"].Value != 5 || byName["sim.deep.depth"].Value != -3 {
		t.Fatalf("snapshot %v", byName)
	}
	if w := byName["wall"]; w.Kind != "timer" || w.Value != 2 || w.TotalNs != int64(40*time.Millisecond) {
		t.Fatalf("timer metric %+v", w)
	}

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range nonEmptyLines(buf.String()) {
		var m Metric
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			for i := 0; i < 1000; i++ {
				c.Inc()
				r.Gauge("depth").Set(int64(i))
				r.Timer("t").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("counter %d, want 8000", got)
	}
	if got := r.Timer("t").Count(); got != 8000 {
		t.Fatalf("timer count %d, want 8000", got)
	}
}

func sampleRecord() *QuantumRecord {
	return &QuantumRecord{
		Mix:     "mcf,libquantum",
		App:     1,
		Bench:   "libquantum",
		Quantum: 3,
		Actual:  2.25,
		Estimates: map[string]float64{
			"ASM": 2.1, "FST": 2.9,
		},
		Counters: AppCounters{
			Retired:         12345,
			L2Accesses:      100,
			L2Misses:        40,
			MemInterfCycles: 1234.5,
		},
	}
}

func TestJSONLRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewJSONLRecorder(&buf)
	want := sampleRecord()
	rec.Record(want)
	rec.Record(sampleRecord())
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	lines := nonEmptyLines(buf.String())
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	var got QuantumRecord
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Mix != want.Mix || got.App != want.App || got.Quantum != want.Quantum ||
		got.Actual != want.Actual || got.Estimates["ASM"] != 2.1 ||
		got.Counters.Retired != 12345 || got.Counters.MemInterfCycles != 1234.5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestJSONLRecorderStickyError(t *testing.T) {
	rec := NewJSONLRecorder(failingWriter{})
	for i := 0; i < 10000; i++ { // overflow the bufio buffer to force a write
		rec.Record(sampleRecord())
	}
	if err := rec.Close(); err == nil {
		t.Fatal("write error must surface at Close")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestCSVRecorder(t *testing.T) {
	var buf bytes.Buffer
	rec := NewCSVRecorder(&buf, []string{"FST", "ASM"}) // sorted to ASM,FST
	rec.Record(sampleRecord())
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want header+1", len(rows))
	}
	head, row := rows[0], rows[1]
	if len(head) != len(row) {
		t.Fatalf("header %d cols, row %d cols", len(head), len(row))
	}
	col := map[string]string{}
	for i, h := range head {
		col[h] = row[i]
	}
	if col["mix"] != "mcf,libquantum" || col["ASM"] != "2.1" || col["FST"] != "2.9" ||
		col["retired"] != "12345" || col["actual"] != "2.25" {
		t.Fatalf("row %v", col)
	}
}

func TestProgressOutput(t *testing.T) {
	var buf bytes.Buffer
	clock := time.Unix(0, 0)
	p := NewProgress(&buf, "fig2", time.Millisecond)
	p.now = func() time.Time { return clock }
	p.Add(4)
	p.StartItem("mix1")
	clock = clock.Add(time.Second)
	p.DoneItem("mix1", nil)
	p.StartItem("mix2")
	clock = clock.Add(time.Second)
	p.DoneItem("mix2", errors.New("boom"))
	p.Finish()
	out := buf.String()
	for _, want := range []string{"fig2: 1/4 done", "LOST mix2: boom", "2/4 done, 1 lost", "eta"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%s", want, out)
		}
	}
}

func TestProgressRateLimit(t *testing.T) {
	var buf bytes.Buffer
	clock := time.Unix(0, 0)
	p := NewProgress(&buf, "x", time.Hour)
	p.now = func() time.Time { return clock }
	p.Add(100)
	for i := 0; i < 100; i++ {
		name := fmt.Sprint(i)
		p.StartItem(name)
		clock = clock.Add(time.Millisecond)
		p.DoneItem(name, nil)
	}
	// Only the first status line beats the rate limit.
	if n := len(nonEmptyLines(buf.String())); n != 1 {
		t.Fatalf("%d status lines for 100 quiet items, want 1", n)
	}
	p.Finish()
	if !strings.Contains(buf.String(), "100/100 done") {
		t.Fatalf("final summary missing:\n%s", buf.String())
	}
}

func TestProfilerCPUAndMem(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.prof", dir+"/mem.prof"
	p, err := StartProfiler(cpu, mem, "")
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		if data := mustRead(t, path); len(data) == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
	if err := p.Stop(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestProfilerPprofServer(t *testing.T) {
	p, err := StartProfiler("", "", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback here: %v", err)
	}
	defer p.Stop()
	addr := p.PprofAddr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("pprof index status %d body %q", resp.StatusCode, body)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/debug/pprof/"); err == nil {
		t.Fatal("server still up after Stop")
	}
}

func TestProfilerDisabled(t *testing.T) {
	p, err := StartProfiler("", "", "")
	if err != nil || p != nil {
		t.Fatalf("disabled profiler: %v %v", p, err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCSVRecorderAlignmentAcrossEstimatorSets(t *testing.T) {
	// The column set is fixed at construction; records whose estimate maps
	// are missing estimators, carry extras, or are nil entirely must still
	// produce rows aligned with the header.
	var buf bytes.Buffer
	rec := NewCSVRecorder(&buf, []string{"FST", "ASM", "PTCA"}) // sorted to ASM,FST,PTCA

	full := sampleRecord()
	full.Estimates = map[string]float64{"ASM": 2.1, "FST": 2.9, "PTCA": 1.7}
	missing := sampleRecord()
	missing.Estimates = map[string]float64{"ASM": 1.1} // FST, PTCA absent
	extra := sampleRecord()
	extra.Estimates = map[string]float64{"ASM": 3.0, "FST": 3.1, "PTCA": 3.2, "MISE": 9.9}
	none := sampleRecord()
	none.Estimates = nil

	for _, r := range []*QuantumRecord{full, missing, extra, none} {
		rec.Record(r)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want header+4", len(rows))
	}
	head := rows[0]
	idx := map[string]int{}
	for i, h := range head {
		idx[h] = i
	}
	if _, ok := idx["MISE"]; ok {
		t.Fatal("estimator outside the constructed set leaked into the header")
	}
	for n, row := range rows[1:] {
		if len(row) != len(head) {
			t.Fatalf("row %d has %d cols, header has %d", n, len(row), len(head))
		}
	}
	if got := rows[2][idx["FST"]]; got != "0" {
		t.Fatalf("missing estimator rendered %q, want 0", got)
	}
	if got := rows[3][idx["PTCA"]]; got != "3.2" {
		t.Fatalf("PTCA = %q", got)
	}
	if got := rows[4][idx["ASM"]]; got != "0" {
		t.Fatalf("nil estimate map rendered %q, want 0", got)
	}
}

func TestCSVRecorderConcurrentWriters(t *testing.T) {
	// Sweep workers share one recorder; the header must be written exactly
	// once and every row must keep the full column count under contention.
	var buf bytes.Buffer
	rec := NewCSVRecorder(&buf, []string{"ASM", "FST"})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r := sampleRecord()
				r.App = w
				r.Quantum = i
				rec.Record(r)
			}
		}(w)
	}
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+8*50 {
		t.Fatalf("%d rows, want header+400", len(rows))
	}
	headers := 0
	for _, row := range rows {
		if len(row) != len(rows[0]) {
			t.Fatalf("ragged row: %d cols vs %d", len(row), len(rows[0]))
		}
		if row[0] == "mix" {
			headers++
		}
	}
	if headers != 1 {
		t.Fatalf("%d header rows", headers)
	}
}

func TestRegistrySnapshotUnderConcurrentWriters(t *testing.T) {
	// Snapshot (and WriteJSONL, which uses it) must be safe while writers
	// are mutating and creating metrics — the race detector enforces the
	// "no torn reads" half; consistency of the final state the rest.
	r := NewRegistry()
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			sc := r.Scope(fmt.Sprintf("w%d", w))
			for i := 0; i < 2000; i++ {
				sc.Counter("ops").Inc()
				sc.Gauge("depth").Set(int64(i))
				sc.Timer("lat").Observe(time.Microsecond)
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, m := range r.Snapshot() {
				if m.Name == "" {
					t.Error("snapshot metric without a name")
					return
				}
			}
			if err := r.WriteJSONL(io.Discard); err != nil {
				t.Errorf("WriteJSONL: %v", err)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	for w := 0; w < 4; w++ {
		if got := r.Scope(fmt.Sprintf("w%d", w)).Counter("ops").Value(); got != 2000 {
			t.Fatalf("w%d ops = %d, want 2000", w, got)
		}
	}
}
