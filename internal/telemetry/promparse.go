package telemetry

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Strict Prometheus text-format (0.0.4) parser. Promoted from the
// exposition tests because the fleet poller needs the same rigor at
// runtime: a node whose /metrics drifts from the format should be
// reported as broken, not silently half-scraped. Every non-comment line
// must be `name{labels} value`, every sample's family must be declared
// by a preceding # TYPE line, TYPE lines must not repeat, and counter
// families must carry the _total suffix.

var (
	promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|NaN|\+Inf|-Inf)$`)
)

// ParseExposition parses a Prometheus text exposition body strictly,
// returning sample key (name plus rendered label set, exactly as
// exposed) -> value. Any deviation from the format is an error, not a
// skipped line.
func ParseExposition(body string) (map[string]float64, error) {
	types := map[string]string{}
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			if len(samples) == 0 && len(types) == 0 {
				continue // wholly empty body (nil registry) is valid
			}
			return nil, fmt.Errorf("telemetry: blank line in exposition body")
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, fmt.Errorf("telemetry: malformed TYPE line %q", line)
			}
			name, typ := parts[2], parts[3]
			if !promNameRe.MatchString(name) {
				return nil, fmt.Errorf("telemetry: illegal family name %q", name)
			}
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				return nil, fmt.Errorf("telemetry: illegal type %q in %q", typ, line)
			}
			if _, dup := types[name]; dup {
				return nil, fmt.Errorf("telemetry: duplicate TYPE line for %s", name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLineRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("telemetry: malformed sample line %q", line)
		}
		base := m[1]
		// Strip summary child suffixes to find the declaring family.
		fam := base
		for _, suf := range []string{"_sum", "_count"} {
			if strings.HasSuffix(base, suf) {
				if _, ok := types[strings.TrimSuffix(base, suf)]; ok {
					fam = strings.TrimSuffix(base, suf)
				}
			}
		}
		if _, ok := types[fam]; !ok {
			return nil, fmt.Errorf("telemetry: sample %q has no TYPE declaration", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: unparseable value in %q: %w", line, err)
		}
		if types[fam] == "counter" && !strings.HasSuffix(fam, "_total") {
			return nil, fmt.Errorf("telemetry: counter family %s lacks _total suffix", fam)
		}
		key := m[1] + m[2]
		if _, dup := samples[key]; dup {
			return nil, fmt.Errorf("telemetry: duplicate sample %q", key)
		}
		samples[key] = v
	}
	return samples, nil
}
