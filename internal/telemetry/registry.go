// Package telemetry is the observability layer: an allocation-free
// atomic counter/gauge/timer registry, a quantum-level time-series
// recorder for per-app counters and slowdown estimates, runtime
// profiling hooks, and live sweep progress reporting.
//
// The paper's evaluation rests on per-quantum counters (Table 1,
// Section 4.3) and multi-hour sweeps over 100 workloads; this package
// makes both observable while they run instead of only after. Every
// entry point is nil-safe: a nil *Registry hands out nil metric
// handles whose methods are no-ops, so instrumented code needs no
// enabled-checks at use sites and the disabled path costs one nil
// check per call.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins int64. The zero value is ready; a nil
// *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last set value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates event durations: count, total, and max. The zero
// value is ready; a nil *Timer is a no-op.
type Timer struct {
	count   atomic.Uint64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

// Observe records one event of the given duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.count.Add(1)
	t.totalNs.Add(int64(d))
	for {
		cur := t.maxNs.Load()
		if int64(d) <= cur || t.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Start returns a stop function that observes the elapsed time when
// called. A nil timer returns a no-op stop.
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.Observe(time.Since(begin)) }
}

// Count returns the number of observed events.
func (t *Timer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the summed duration of all events.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.totalNs.Load())
}

// Max returns the longest observed event.
func (t *Timer) Max() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.maxNs.Load())
}

// Mean returns the average event duration (0 with no events).
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return t.Total() / time.Duration(n)
}

// registryData is the shared name->metric store behind a Registry and
// all its scopes.
type registryData struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// Registry hands out named metrics. Handles are resolved once (with a
// lock) and then updated lock-free; instrumented hot paths should keep
// the handle, not the name. Scopes share their parent's store with a
// dotted name prefix. A nil *Registry hands out nil handles.
type Registry struct {
	data   *registryData
	prefix string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{data: &registryData{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		hists:    map[string]*Histogram{},
	}}
}

// Scope returns a view of the registry that prefixes every metric name
// with "name." (nested scopes chain). Scoping a nil registry is a nil
// registry.
func (r *Registry) Scope(name string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{data: r.data, prefix: r.prefix + name + "."}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	d := r.data
	d.mu.Lock()
	defer d.mu.Unlock()
	full := r.prefix + name
	c := d.counters[full]
	if c == nil {
		c = &Counter{}
		d.counters[full] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	d := r.data
	d.mu.Lock()
	defer d.mu.Unlock()
	full := r.prefix + name
	g := d.gauges[full]
	if g == nil {
		g = &Gauge{}
		d.gauges[full] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	d := r.data
	d.mu.Lock()
	defer d.mu.Unlock()
	full := r.prefix + name
	t := d.timers[full]
	if t == nil {
		t = &Timer{}
		d.timers[full] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	d := r.data
	d.mu.Lock()
	defer d.mu.Unlock()
	full := r.prefix + name
	h := d.hists[full]
	if h == nil {
		h = &Histogram{}
		d.hists[full] = h
	}
	return h
}

// Metric is one registry entry's exported state.
type Metric struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge", "timer" or "histogram"
	// Value is the counter count or gauge value; for timers and
	// histograms it is the event count.
	Value int64 `json:"value"`
	// TotalNs, MeanNs and MaxNs are set for timers and histograms.
	TotalNs int64 `json:"total_ns,omitempty"`
	MeanNs  int64 `json:"mean_ns,omitempty"`
	MaxNs   int64 `json:"max_ns,omitempty"`
	// Quantile estimates, set for histograms only.
	P50Ns  int64 `json:"p50_ns,omitempty"`
	P90Ns  int64 `json:"p90_ns,omitempty"`
	P99Ns  int64 `json:"p99_ns,omitempty"`
	P999Ns int64 `json:"p999_ns,omitempty"`
}

// Snapshot returns every metric in the registry (including all scopes),
// sorted by name. A nil registry snapshots empty.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	d := r.data
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Metric, 0, len(d.counters)+len(d.gauges)+len(d.timers)+len(d.hists))
	for name, c := range d.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: int64(c.Value())})
	}
	for name, g := range d.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, t := range d.timers {
		out = append(out, Metric{
			Name:    name,
			Kind:    "timer",
			Value:   int64(t.Count()),
			TotalNs: int64(t.Total()),
			MeanNs:  int64(t.Mean()),
			MaxNs:   int64(t.Max()),
		})
	}
	for name, h := range d.hists {
		s := h.Snapshot()
		out = append(out, Metric{
			Name:    name,
			Kind:    "histogram",
			Value:   int64(s.Count),
			TotalNs: int64(s.Sum),
			MeanNs:  int64(s.Mean()),
			MaxNs:   int64(s.Max),
			P50Ns:   int64(s.Quantile(0.50)),
			P90Ns:   int64(s.Quantile(0.90)),
			P99Ns:   int64(s.Quantile(0.99)),
			P999Ns:  int64(s.Quantile(0.999)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SnapshotHistograms copies every histogram's full bucketed state,
// keyed by registry name. Unlike Snapshot (which pre-computes quantiles
// and drops the buckets), these snapshots are mergeable: the fleet
// poller sums per-node snapshots into one distribution and takes exact
// cluster-wide quantiles from the merged buckets. A nil registry
// returns nil.
func (r *Registry) SnapshotHistograms() map[string]HistogramSnapshot {
	if r == nil {
		return nil
	}
	d := r.data
	d.mu.Lock()
	hists := make(map[string]*Histogram, len(d.hists))
	for name, h := range d.hists {
		hists[name] = h
	}
	d.mu.Unlock()
	// Bucket copies happen outside the registry lock: they are per-bucket
	// atomic loads and need no map consistency.
	out := make(map[string]HistogramSnapshot, len(hists))
	for name, h := range hists {
		out[name] = h.Snapshot()
	}
	return out
}

// WriteJSONL writes the snapshot as one JSON object per line.
func (r *Registry) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, m := range r.Snapshot() {
		if err := enc.Encode(m); err != nil {
			return fmt.Errorf("telemetry: write metric %s: %w", m.Name, err)
		}
	}
	return nil
}
