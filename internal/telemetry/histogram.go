package telemetry

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-bucketed histogram geometry. Values below histSub land in exact
// unit buckets; above it each power-of-two range is split into histSub
// linear sub-buckets, so the relative width of any bucket is at most
// 1/histSub (6.25%) and a bucket-midpoint quantile estimate is within
// ~3.2% of the true value regardless of magnitude. 16 + 60*16 buckets
// cover the full uint64 range in 7.6 KiB per histogram.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	histBuckets = histSub + (64-histSubBits)*histSub
)

// Histogram is a lock-free log-bucketed value distribution: the record
// path is a handful of atomic adds (no locks, no allocation), quantiles
// are estimated from the bucket counts at snapshot time. Values are
// unitless uint64s; the service layer records nanoseconds. The zero
// value is ready; a nil *Histogram is a no-op, like every other metric
// handle in this package.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// histBucket maps a value to its bucket index.
func histBucket(v uint64) int {
	if v < histSub {
		return int(v)
	}
	p := uint(bits.Len64(v)) - 1 // >= histSubBits
	sub := (v >> (p - histSubBits)) & (histSub - 1)
	return histSub + int(p-histSubBits)*histSub + int(sub)
}

// histBucketBounds returns a bucket's value range [low, low+width).
func histBucketBounds(i int) (low, width uint64) {
	if i < histSub {
		return uint64(i), 1
	}
	g := uint(i-histSub) / histSub
	sub := uint64(i-histSub) % histSub
	p := g + histSubBits
	width = 1 << (p - histSubBits)
	return (1 << p) + sub*width, width
}

// Record adds one observation. Zero-allocation and lock-free: one
// bucket add, a count add, a sum add, and a bounded max CAS.
func (h *Histogram) Record(v uint64) {
	if h == nil {
		return
	}
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Observe records a duration in nanoseconds (negative durations clamp
// to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Start returns a stop function that observes the elapsed time when
// called. A nil histogram returns a no-op stop.
func (h *Histogram) Start() func() {
	if h == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { h.Observe(time.Since(begin)) }
}

// Count returns the number of recorded observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all recorded values (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest recorded value (0 on nil).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-quantile (q in [0, 1]) from the live bucket
// counts; see HistogramSnapshot.Quantile for the estimation rule.
func (h *Histogram) Quantile(q float64) uint64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Snapshot copies the histogram's current state into an immutable,
// mergeable value. Concurrent Records during the copy may land in
// either the snapshot or the next one; each bucket read is atomic, so
// the snapshot never contains torn counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, suitable
// for quantile estimation and cross-shard merging (per-node histograms
// sum into a fleet view).
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [histBuckets]uint64
}

// Merge adds another snapshot's observations into this one.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-quantile (q in [0, 1]): the value at rank
// ceil(q*Count), interpolated linearly within its bucket and clamped to
// the observed Max. Returns 0 for an empty snapshot.
func (s *HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if rank < cum+n {
			low, width := histBucketBounds(i)
			// Linear interpolation at the rank's position within the bucket.
			v := low + (width*(rank-cum)+width/2)/n
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum += n
	}
	return s.Max
}

// Mean returns the average recorded value (0 when empty).
func (s *HistogramSnapshot) Mean() uint64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// histSnapshotJSON is the wire form of a snapshot: buckets ship sparse
// (index -> count) because a latency histogram populates a few dozen of
// the 976 buckets, and the fleet poller moves these over HTTP every
// poll tick.
type histSnapshotJSON struct {
	Count   uint64         `json:"count"`
	Sum     uint64         `json:"sum"`
	Max     uint64         `json:"max"`
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// MarshalJSON encodes the snapshot with sparse buckets.
func (s HistogramSnapshot) MarshalJSON() ([]byte, error) {
	out := histSnapshotJSON{Count: s.Count, Sum: s.Sum, Max: s.Max}
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if out.Buckets == nil {
			out.Buckets = map[int]uint64{}
		}
		out.Buckets[i] = n
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the sparse wire form. Bucket indexes outside
// this build's geometry are an error — merging histograms recorded
// under different geometries would silently misplace counts.
func (s *HistogramSnapshot) UnmarshalJSON(data []byte) error {
	var in histSnapshotJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*s = HistogramSnapshot{Count: in.Count, Sum: in.Sum, Max: in.Max}
	for i, n := range in.Buckets {
		if i < 0 || i >= histBuckets {
			return fmt.Errorf("telemetry: histogram bucket index %d outside geometry [0, %d)", i, histBuckets)
		}
		s.Buckets[i] = n
	}
	return nil
}
