package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(7)
	h.Observe(time.Second)
	h.Start()()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("nil histogram is not a no-op")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and
	// bounds must tile the value space without gaps.
	next := uint64(0)
	for i := 0; i < histBuckets; i++ {
		low, width := histBucketBounds(i)
		if low != next {
			t.Fatalf("bucket %d: low %d, want %d (gap or overlap)", i, low, next)
		}
		if histBucket(low) != i {
			t.Fatalf("bucket %d: low %d maps to bucket %d", i, low, histBucket(low))
		}
		if last := low + width - 1; histBucket(last) != i {
			t.Fatalf("bucket %d: last value %d maps to bucket %d", i, last, histBucket(last))
		}
		next = low + width
		if next == 0 { // wrapped past max uint64
			if i != histBuckets-1 {
				t.Fatalf("value space exhausted at bucket %d of %d", i, histBuckets)
			}
			break
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	for v := uint64(1); v <= 100; v++ {
		h.Record(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum %d, want 5050", h.Sum())
	}
	if h.Max() != 100 {
		t.Fatalf("max %d, want 100", h.Max())
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 %d, want 100", got)
	}
	if got := h.Quantile(0); got < 1 || got > 2 {
		t.Fatalf("p0 %d, want ~1", got)
	}
}

// TestHistogramQuantileAccuracy is the property test: against a
// sorted-slice oracle over several value distributions, every estimated
// quantile must be within the bucketing scheme's relative-error bound.
func TestHistogramQuantileAccuracy(t *testing.T) {
	const tolerance = 0.08 // bucket width 1/16, midpoint estimate + rank effects
	distributions := map[string]func(r *rand.Rand) uint64{
		"uniform":   func(r *rand.Rand) uint64 { return uint64(r.Int63n(1_000_000)) },
		"exp":       func(r *rand.Rand) uint64 { return uint64(r.ExpFloat64() * 50_000) },
		"lognormal": func(r *rand.Rand) uint64 { return uint64(1000 * (1 + r.Float64()*r.Float64()*1e6)) },
		"bimodal": func(r *rand.Rand) uint64 {
			if r.Intn(10) == 0 {
				return uint64(5_000_000 + r.Int63n(100_000))
			}
			return uint64(10_000 + r.Int63n(1_000))
		},
		"small": func(r *rand.Rand) uint64 { return uint64(r.Int63n(12)) },
	}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			h := &Histogram{}
			vals := make([]uint64, 0, 20_000)
			for i := 0; i < 20_000; i++ {
				v := gen(r)
				h.Record(v)
				vals = append(vals, v)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			snap := h.Snapshot()
			for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
				rank := int(q * float64(len(vals)))
				if rank >= len(vals) {
					rank = len(vals) - 1
				}
				want := vals[rank]
				got := snap.Quantile(q)
				diff := float64(got) - float64(want)
				if diff < 0 {
					diff = -diff
				}
				// Relative tolerance with a small absolute floor for the
				// exact unit buckets.
				bound := tolerance * float64(want)
				if bound < 2 {
					bound = 2
				}
				if diff > bound {
					t.Errorf("q%.3f: estimated %d, oracle %d (err %.1f%%, bound %.1f%%)",
						q, got, want, 100*diff/float64(want+1), 100*tolerance)
				}
			}
		})
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	whole := &Histogram{}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		v := uint64(r.Int63n(1_000_000))
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := whole.Snapshot()
	if merged != want {
		t.Fatal("merged shard snapshots differ from the whole-stream histogram")
	}
}

// TestHistogramConcurrency hammers one histogram from many goroutines
// (run under -race by make race) and checks nothing is lost: the final
// count and sum must equal the injected totals exactly.
func TestHistogramConcurrency(t *testing.T) {
	h := &Histogram{}
	const (
		goroutines = 8
		perG       = 50_000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Record(uint64(r.Int63n(1 << 40)))
			}
		}(g)
	}
	// Concurrent snapshots must be internally safe too.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				s := h.Snapshot()
				_ = s.Quantile(0.99)
			}
		}
	}()
	wg.Wait()
	close(done)
	if h.Count() != goroutines*perG {
		t.Fatalf("count %d, want %d", h.Count(), goroutines*perG)
	}
	var inBuckets uint64
	s := h.Snapshot()
	for _, n := range s.Buckets {
		inBuckets += n
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket total %d != count %d", inBuckets, s.Count)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Scope("serve").Histogram("job_latency_ns")
	if h != r.Scope("serve").Histogram("job_latency_ns") {
		t.Fatal("histogram handles not shared by name")
	}
	for v := uint64(0); v < 1000; v++ {
		h.Record(v)
	}
	var m *Metric
	for _, s := range r.Snapshot() {
		if s.Name == "serve.job_latency_ns" {
			m = &s
			break
		}
	}
	if m == nil {
		t.Fatal("histogram missing from registry snapshot")
	}
	if m.Kind != "histogram" || m.Value != 1000 || m.MaxNs != 999 {
		t.Fatalf("snapshot metric %+v", m)
	}
	if m.P50Ns < 450 || m.P50Ns > 550 || m.P99Ns < 920 || m.P999Ns > 999 {
		t.Fatalf("quantiles off: %+v", m)
	}
	var nilReg *Registry
	if nilReg.Histogram("x") != nil {
		t.Fatal("nil registry handed out a histogram")
	}
}

// BenchmarkHistogramRecord is the zero-alloc guard for the record path,
// mirroring the no-subscriber SSE guard: a histogram record must not
// allocate, ever — it sits on the job service's per-quantum and
// journal-append paths.
func BenchmarkHistogramRecord(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(1)
		for pb.Next() {
			h.Record(v)
			v = v*2862933555777941757 + 3037000493 // cheap LCG spread
		}
	})
	if a := testing.AllocsPerRun(1000, func() { h.Record(123456) }); a != 0 {
		b.Fatalf("Record allocates %v bytes/op, want 0", a)
	}
}
