// Package core implements the paper's primary contribution: the
// Application Slowdown Model (ASM, Sections 3-4).
//
// ASM estimates each application's slowdown as the ratio of its shared-
// cache access rate had it run alone (CAR_alone) to its measured shared
// cache access rate (CAR_shared). CAR_alone is estimated per quantum from
// aggregate behaviour collected during the epochs in which the application
// was given highest priority at the memory controller:
//
//	CAR_alone = (epoch-hits + epoch-misses) /
//	            (epoch-count*E - epoch-excess-cycles
//	             - epoch-ATS-misses*avg-queueing-delay)
//
// where epoch-excess-cycles charges contention misses (cache capacity
// interference quantified via the auxiliary tag store) with the difference
// between the measured average miss and hit service times, and the final
// term removes residual memory queueing delay (Section 4.3).
package core

import "asmsim/internal/sim"

// Estimator is the common interface of all slowdown models in this repo:
// a pure function from one quantum's counters to per-app slowdown
// estimates.
type Estimator interface {
	// Name identifies the model in experiment output.
	Name() string
	// Estimate returns one slowdown estimate per application for the
	// quantum described by st.
	Estimate(st *sim.QuantumStats) []float64
}

// maxSlowdown bounds estimates against degenerate denominators.
const maxSlowdown = 50.0

// clampSlowdown restricts an estimate to the meaningful range [1, 50]:
// slowdowns below 1 are measurement noise (an app cannot run faster with
// interference than alone), and unbounded values only arise from
// near-zero denominators.
func clampSlowdown(s float64) float64 {
	switch {
	case s < 1 || s != s: // NaN guards
		return 1
	case s > maxSlowdown:
		return maxSlowdown
	}
	return s
}

// ASM is the Application Slowdown Model.
type ASM struct {
	// NoQueueingCorrection disables the Section 4.3 residual memory
	// queueing term (for the ablation benchmark; always leave false for
	// the full model).
	NoQueueingCorrection bool

	// MinEpochRequests gates the model on sample size: with fewer shared-
	// cache requests observed across the app's epochs, the CAR ratio is
	// dominated by counting noise (the epoch window covers only
	// 1/numApps of time, so small counts are amplified by that factor).
	// Below the gate the estimate decays toward 1 — an app that barely
	// touches the shared cache is barely slowed by it. 0 selects the
	// default of 64.
	MinEpochRequests uint64

	// prev holds the previous quantum's estimates, used as a fallback for
	// apps that received no epochs or generated no traffic this quantum
	// (phase behaviour is stable across adjacent quanta, Section 3.1).
	prev []float64
}

// NewASM returns an ASM estimator.
func NewASM() *ASM { return &ASM{} }

// Name implements Estimator.
func (*ASM) Name() string { return "ASM" }

// Estimate implements Estimator using the model of Sections 4.1-4.4.
func (m *ASM) Estimate(st *sim.QuantumStats) []float64 {
	n := st.NumApps()
	if len(m.prev) != n {
		m.prev = make([]float64, n)
		for i := range m.prev {
			m.prev[i] = 1
		}
	}
	out := make([]float64, n)
	for a := 0; a < n; a++ {
		out[a] = m.estimateApp(st, a)
		m.prev[a] = out[a]
	}
	return out
}

// estimateApp computes one app's slowdown for the quantum.
func (m *ASM) estimateApp(st *sim.QuantumStats, a int) float64 {
	carShared := st.CARShared(a)
	carAlone, ok := m.CARAlone(st, a)
	if carShared == 0 || !ok {
		// No reliable signal this quantum: decay the previous estimate
		// toward 1. Phase stability justifies reusing it briefly
		// (Section 3.1), but an app that persistently generates no
		// shared-cache traffic is not being slowed by shared resources.
		return clampSlowdown(1 + 0.5*(m.prev[a]-1))
	}
	return clampSlowdown(carAlone / carShared)
}

// CARAlone estimates app a's alone shared-cache access rate for the
// quantum per Sections 4.2-4.4. ok is false when the app received no
// epochs or produced no epoch traffic, leaving the model without signal.
func (m *ASM) CARAlone(st *sim.QuantumStats, a int) (carAlone float64, ok bool) {
	aq := &st.Apps[a]
	epochRequests := aq.EpochHits + aq.EpochMisses
	minReq := m.MinEpochRequests
	if minReq == 0 {
		minReq = 64
	}
	if aq.EpochCount == 0 || epochRequests < minReq {
		return 0, false
	}

	// Section 4.4: scale the sampled ATS hit fraction to the epoch's
	// access count. With an unsampled ATS the fraction is exact.
	var atsHitFrac float64
	if aq.EpochATSProbes > 0 {
		atsHitFrac = float64(aq.EpochATSHits) / float64(aq.EpochATSProbes)
	}
	epochATSHits := atsHitFrac * float64(aq.EpochAccesses)
	epochATSMisses := float64(aq.EpochAccesses) - epochATSHits

	// Section 4.2: excess cycles spent on contention misses.
	contentionMisses := epochATSHits - float64(aq.EpochHits)
	if contentionMisses < 0 {
		contentionMisses = 0
	}
	avgMissTime := perUnit(aq.EpochMissTime, aq.EpochMisses)
	avgHitTime := perUnit(aq.EpochHitTime, aq.EpochHits)
	if avgHitTime == 0 {
		avgHitTime = float64(st.L2HitLatency)
	}
	if avgMissTime == 0 {
		// The app had no epoch misses; there is no miss-service estimate
		// and also no contention-miss charge to apply.
		avgMissTime = avgHitTime
	}
	excess := contentionMisses * (avgMissTime - avgHitTime)
	if excess < 0 {
		excess = 0
	}

	// Section 4.3: residual memory queueing for the misses that would
	// remain even when run alone.
	avgQueueing := perUnit(aq.QueueingCycles, aq.EpochMisses)
	queueing := epochATSMisses * avgQueueing
	if m.NoQueueingCorrection {
		queueing = 0
	}

	epochCycles := float64(aq.EpochCount) * float64(st.EpochLen)
	denom := epochCycles - excess - queueing
	if denom <= 0 {
		denom = epochCycles * 0.05 // degenerate: almost all time was excess
	}
	return float64(epochRequests) / denom, true
}

// perUnit returns num/den as float64, or 0 when den is 0.
func perUnit(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
