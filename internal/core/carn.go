package core

import "asmsim/internal/sim"

// CARAtWays estimates app a's shared-cache access rate had it been
// allocated n ways, per Section 7.1's CAR_n model:
//
//	CAR_n = (quantum-hits + quantum-misses) /
//	        (Q - Δhits * (quantum-miss-time - quantum-hit-time))
//
// where Δhits = quantum-hits_n - quantum-hits comes from the auxiliary tag
// store's LRU stack-position profile (scaled when the ATS is sampled), and
// the hit/miss service times are the quantum's measured averages. When the
// allocation would produce more hits than observed, the requests would have
// been served in fewer cycles (CAR_n rises); with fewer hits, in more
// cycles (CAR_n falls).
func CARAtWays(st *sim.QuantumStats, a, n int) float64 {
	aq := &st.Apps[a]
	accesses := aq.L2Hits + aq.L2Misses
	if accesses == 0 || st.Cycles == 0 {
		return 0
	}

	hitsN := hitsAtWays(st, a, n)
	deltaHits := hitsN - float64(aq.L2Hits)

	avgMissTime := perUnit(aq.QuantumMissTime, aq.L2Misses)
	avgHitTime := perUnit(aq.QuantumHitTime, aq.L2Hits)
	if avgHitTime == 0 {
		avgHitTime = float64(st.L2HitLatency)
	}
	if avgMissTime <= avgHitTime {
		// No observed misses (or noise): an extra hit saves nothing and
		// the access rate cannot depend on the allocation.
		return float64(accesses) / float64(st.Cycles)
	}

	cyclesN := float64(st.Cycles) - deltaHits*(avgMissTime-avgHitTime)
	if min := float64(st.Cycles) * 0.05; cyclesN < min {
		cyclesN = min
	}
	return float64(accesses) / cyclesN
}

// hitsAtWays returns the estimated number of this quantum's accesses that
// would have hit with an n-way allocation, from the (possibly sampled)
// ATS stack-position profile scaled to all accesses (Section 4.4).
func hitsAtWays(st *sim.QuantumStats, a, n int) float64 {
	aq := &st.Apps[a]
	if aq.ATSProbes == 0 {
		return 0
	}
	if n > len(aq.ATSHitsAtWay) {
		n = len(aq.ATSHitsAtWay)
	}
	var h uint64
	for p := 0; p < n; p++ {
		h += aq.ATSHitsAtWay[p]
	}
	frac := float64(h) / float64(aq.ATSProbes)
	return frac * float64(aq.L2Hits+aq.L2Misses)
}

// SlowdownCurve returns app a's estimated slowdown for every way
// allocation n in [1, st.L2Ways], with index n-1 holding slowdown_n =
// CAR_alone / CAR_n. The returned ok is false when ASM has no signal for
// the app this quantum (the caller should reuse stale curves or treat the
// app as insensitive).
//
// This is the quantity ASM-Cache feeds to the lookahead partitioner, and
// the paper highlights that deriving it is straightforward for ASM but
// non-trivial for per-request models like FST/PTCA (Section 7.1).
func SlowdownCurve(m *ASM, st *sim.QuantumStats, a int) (curve []float64, ok bool) {
	carAlone, ok := m.CARAlone(st, a)
	if !ok {
		return nil, false
	}
	curve = make([]float64, st.L2Ways)
	for n := 1; n <= st.L2Ways; n++ {
		carN := CARAtWays(st, a, n)
		if carN <= 0 {
			curve[n-1] = 1
			continue
		}
		curve[n-1] = clampSlowdown(carAlone / carN)
	}
	return curve, true
}
