package core

import (
	"math"
	"testing"

	"asmsim/internal/sim"
)

// fixture builds a QuantumStats with one app and sensible defaults:
// Q = 1M cycles, E = 10K, 100 epochs assigned, unsampled ATS.
func fixture() *sim.QuantumStats {
	st := &sim.QuantumStats{
		Cycles:       1_000_000,
		EpochLen:     10_000,
		L2HitLatency: 20,
		ATSScale:     1,
		L2Ways:       16,
		Apps:         make([]sim.AppQuantum, 1),
	}
	a := &st.Apps[0]
	a.Retired = 500_000
	a.EpochCount = 100
	return st
}

func TestASMNoInterferenceNoSlowdown(t *testing.T) {
	st := fixture()
	a := &st.Apps[0]
	// The app's epoch behaviour matches its quantum behaviour exactly:
	// epochs cover 100*10K = 1M cycles worth of extrapolated accesses.
	a.L2Accesses, a.L2Hits, a.L2Misses = 10_000, 8_000, 2_000
	a.EpochAccesses, a.EpochHits, a.EpochMisses = 10_000, 8_000, 2_000
	a.EpochATSProbes, a.EpochATSHits = 10_000, 8_000 // ATS agrees with the cache: no contention
	a.EpochHitTime, a.EpochMissTime = 160_000, 400_000
	a.QueueingCycles = 0

	sd := NewASM().Estimate(st)[0]
	if math.Abs(sd-1) > 0.01 {
		t.Fatalf("no-interference slowdown %v, want ~1", sd)
	}
}

func TestASMContentionMissesRaiseSlowdown(t *testing.T) {
	st := fixture()
	a := &st.Apps[0]
	a.L2Accesses, a.L2Hits, a.L2Misses = 10_000, 4_000, 6_000
	a.EpochAccesses, a.EpochHits, a.EpochMisses = 10_000, 4_000, 6_000
	// Had it run alone, 8000 of those accesses would have hit: 4000
	// contention misses.
	a.EpochATSProbes, a.EpochATSHits = 10_000, 8_000
	a.EpochHitTime = 80_000   // avg hit 20 cycles
	a.EpochMissTime = 900_000 // avg miss 150 cycles
	sd := NewASM().Estimate(st)[0]
	// excess = 4000 * (150 - 20) = 520K of the 1M epoch cycles.
	// CAR_alone = 10000/480K; CAR_shared = 10000/1M => slowdown ~2.08.
	if sd < 1.8 || sd < 1 || sd > 2.4 {
		t.Fatalf("contention slowdown %v, want ~2.08", sd)
	}
}

func TestASMQueueingCorrection(t *testing.T) {
	st := fixture()
	a := &st.Apps[0]
	a.L2Accesses, a.L2Hits, a.L2Misses = 10_000, 0, 10_000
	a.EpochAccesses, a.EpochHits, a.EpochMisses = 10_000, 0, 10_000
	a.EpochATSProbes, a.EpochATSHits = 10_000, 0 // all true misses: no contention
	a.EpochMissTime = 900_000
	a.QueueingCycles = 200_000 // residual queueing: 20 cycles per miss

	with := NewASM().Estimate(st)[0]
	noCorr := NewASM()
	noCorr.NoQueueingCorrection = true
	without := noCorr.Estimate(st)[0]
	if with <= without {
		t.Fatalf("queueing correction must raise CAR_alone (so the estimate): %v vs %v", with, without)
	}
	// epoch cycles 1M - queueing 10000*20=200K => CAR_alone = 10000/800K;
	// slowdown = 1.25.
	if math.Abs(with-1.25) > 0.05 {
		t.Fatalf("queueing-corrected slowdown %v, want ~1.25", with)
	}
}

func TestASMSampledScaling(t *testing.T) {
	// A sampled ATS sees 1/32 of probes; Section 4.4 scales fractions to
	// epoch accesses — the estimate must match the unsampled equivalent.
	build := func(scale float64, probes, hits uint64) *sim.QuantumStats {
		st := fixture()
		st.ATSScale = scale
		a := &st.Apps[0]
		a.L2Accesses, a.L2Hits, a.L2Misses = 10_000, 4_000, 6_000
		a.EpochAccesses, a.EpochHits, a.EpochMisses = 10_000, 4_000, 6_000
		a.EpochATSProbes, a.EpochATSHits = probes, hits
		a.EpochHitTime = 80_000
		a.EpochMissTime = 900_000
		return st
	}
	full := NewASM().Estimate(build(1, 10_000, 8_000))[0]
	sampled := NewASM().Estimate(build(32, 312, 250))[0] // same 80% hit fraction
	if math.Abs(full-sampled) > 0.02*full {
		t.Fatalf("sampled estimate %v diverges from full %v", sampled, full)
	}
}

func TestASMFallbackWithoutSignal(t *testing.T) {
	m := NewASM()
	st := fixture()
	a := &st.Apps[0]
	a.L2Accesses, a.L2Hits, a.L2Misses = 10_000, 4_000, 6_000
	a.EpochAccesses, a.EpochHits, a.EpochMisses = 10_000, 4_000, 6_000
	a.EpochATSProbes, a.EpochATSHits = 10_000, 8_000
	a.EpochHitTime = 80_000
	a.EpochMissTime = 900_000
	first := m.Estimate(st)[0]
	if first <= 1 {
		t.Fatalf("setup should produce slowdown > 1, got %v", first)
	}
	// Next quantum: no epochs assigned -> the previous estimate is reused
	// with decay toward 1 (persistent lack of signal means the app is not
	// interacting with the shared resources).
	empty := fixture()
	empty.Apps[0].EpochCount = 0
	empty.Apps[0].L2Accesses = 5_000
	want := 1 + 0.5*(first-1)
	if got := m.Estimate(empty)[0]; got != want {
		t.Fatalf("fallback %v, want decayed %v", got, want)
	}
}

func TestASMMinSignalGate(t *testing.T) {
	st := fixture()
	a := &st.Apps[0]
	// A trickle of epoch traffic (below the 64-request gate) must not
	// produce a noise-amplified estimate.
	a.L2Accesses, a.L2Hits, a.L2Misses = 40, 10, 30
	a.EpochAccesses, a.EpochHits, a.EpochMisses = 5, 2, 3
	a.EpochATSProbes, a.EpochATSHits = 5, 5
	a.EpochHitTime, a.EpochMissTime = 40, 900
	if got := NewASM().Estimate(st)[0]; got != 1 {
		t.Fatalf("tiny-signal estimate %v, want 1", got)
	}
}

func TestASMFreshModelDefaultsToOne(t *testing.T) {
	st := fixture()
	st.Apps[0].EpochCount = 0
	if got := NewASM().Estimate(st)[0]; got != 1 {
		t.Fatalf("fresh model without signal must estimate 1, got %v", got)
	}
}

func TestASMClamps(t *testing.T) {
	st := fixture()
	a := &st.Apps[0]
	// Pathological counters: excess swallows nearly all epoch time.
	a.L2Accesses, a.L2Hits, a.L2Misses = 100_000, 0, 100_000
	a.EpochAccesses, a.EpochHits, a.EpochMisses = 100_000, 1, 99_999
	a.EpochATSProbes, a.EpochATSHits = 100_000, 100_000
	a.EpochHitTime = 20
	a.EpochMissTime = 1_000_000
	sd := NewASM().Estimate(st)[0]
	if sd < 1 || sd > 50 {
		t.Fatalf("estimate %v outside [1, 50]", sd)
	}
}

func TestClampSlowdown(t *testing.T) {
	if clampSlowdown(0.5) != 1 || clampSlowdown(100) != 50 || clampSlowdown(3) != 3 {
		t.Fatal("clamp broken")
	}
	if clampSlowdown(math.NaN()) != 1 {
		t.Fatal("NaN must clamp to 1")
	}
}

func TestCARAtWaysThreeCases(t *testing.T) {
	// Section 7.1's three cases: same hits => Q cycles; more hits =>
	// fewer cycles (higher CAR); fewer hits => more cycles (lower CAR).
	st := fixture()
	a := &st.Apps[0]
	a.L2Accesses, a.L2Hits, a.L2Misses = 10_000, 5_000, 5_000
	a.QuantumHitTime = 100_000  // avg hit 20
	a.QuantumMissTime = 750_000 // avg miss 150
	a.ATSProbes = 10_000
	// Way profile: hits grow linearly with ways, 5000 hits at 8 ways
	// (current behaviour), 10000 at 16.
	a.ATSHitsAtWay = make([]uint64, 16)
	for p := 0; p < 16; p++ {
		a.ATSHitsAtWay[p] = 625
	}
	carCurrent := CARAtWays(st, 0, 8)
	carMore := CARAtWays(st, 0, 16)
	carLess := CARAtWays(st, 0, 2)
	baseline := float64(a.L2Accesses) / float64(st.Cycles)
	if math.Abs(carCurrent-baseline) > 0.02*baseline {
		t.Fatalf("same-hits CAR %v, want ~%v", carCurrent, baseline)
	}
	if carMore <= carCurrent {
		t.Fatalf("more ways must raise CAR: %v <= %v", carMore, carCurrent)
	}
	if carLess >= carCurrent {
		t.Fatalf("fewer ways must lower CAR: %v >= %v", carLess, carCurrent)
	}
}

func TestCARAtWaysNoAccesses(t *testing.T) {
	st := fixture()
	if CARAtWays(st, 0, 8) != 0 {
		t.Fatal("idle app must have zero CAR")
	}
}

func TestSlowdownCurveMonotone(t *testing.T) {
	st := fixture()
	a := &st.Apps[0]
	a.L2Accesses, a.L2Hits, a.L2Misses = 10_000, 5_000, 5_000
	a.EpochAccesses, a.EpochHits, a.EpochMisses = 10_000, 5_000, 5_000
	a.EpochATSProbes, a.EpochATSHits = 10_000, 9_000
	a.EpochHitTime, a.EpochMissTime = 100_000, 750_000
	a.QuantumHitTime, a.QuantumMissTime = 100_000, 750_000
	a.ATSProbes = 10_000
	a.ATSHitsAtWay = make([]uint64, 16)
	for p := 0; p < 16; p++ {
		a.ATSHitsAtWay[p] = 563
	}
	m := NewASM()
	curve, ok := SlowdownCurve(m, st, 0)
	if !ok {
		t.Fatal("curve unavailable")
	}
	if len(curve) != 16 {
		t.Fatalf("curve length %d", len(curve))
	}
	for n := 1; n < 16; n++ {
		if curve[n] > curve[n-1]+1e-9 {
			t.Fatalf("slowdown increased with more ways at %d: %v > %v", n+1, curve[n], curve[n-1])
		}
	}
}

func TestSlowdownCurveNoSignal(t *testing.T) {
	st := fixture()
	st.Apps[0].EpochCount = 0
	if _, ok := SlowdownCurve(NewASM(), st, 0); ok {
		t.Fatal("curve must be unavailable without epochs")
	}
}
