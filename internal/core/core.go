package core
