package core

import (
	"math"

	"asmsim/internal/sim"
)

// Sanitize wraps an estimator with the defensive guard ASM applies
// internally: whenever the underlying model produces a non-finite or
// out-of-range estimate — or the quantum's float counters themselves
// carry NaN/Inf from a corrupted snapshot — the app's estimate falls back
// to the previous quantum's value decayed toward 1, exactly like ASM's
// no-signal path (phase stability, Section 3.1). This extends the
// clampSlowdown discipline to the baseline estimators, whose stateless
// clamps would otherwise jump to 1 on a single bad readout.
//
// In normal operation the guard is a strict pass-through: every estimator
// in this repo already clamps its output to [1, maxSlowdown], so wrapped
// and unwrapped runs produce identical numbers on clean counters.
func Sanitize(e Estimator) Estimator { return &guarded{inner: e} }

// SanitizeAll wraps every estimator in the set with Sanitize.
func SanitizeAll(es []Estimator) []Estimator {
	out := make([]Estimator, len(es))
	for i, e := range es {
		out[i] = Sanitize(e)
	}
	return out
}

// guarded is the Sanitize wrapper. It keeps one previous-quantum estimate
// per app as the fallback, mirroring ASM's prev slice.
type guarded struct {
	inner Estimator
	prev  []float64
}

// Name implements Estimator, delegating so experiment tables and sample
// maps are unaffected by wrapping.
func (g *guarded) Name() string { return g.inner.Name() }

// Estimate implements Estimator.
func (g *guarded) Estimate(st *sim.QuantumStats) []float64 {
	out := g.inner.Estimate(st)
	if len(g.prev) != len(out) {
		g.prev = make([]float64, len(out))
		for i := range g.prev {
			g.prev[i] = 1
		}
	}
	for a, v := range out {
		if !finite(v) || v < 1 || v > maxSlowdown || corruptCounters(&st.Apps[a]) {
			out[a] = clampSlowdown(1 + 0.5*(g.prev[a]-1))
		}
		g.prev[a] = out[a]
	}
	return out
}

// corruptCounters reports whether an app's float counters carry NaN/Inf.
// Real accumulation never produces them (the sim sums finite deltas), so
// a non-finite value means the snapshot was corrupted in flight and every
// estimate derived from it is suspect.
func corruptCounters(aq *sim.AppQuantum) bool {
	return !finite(aq.MemInterfCycles) || !finite(aq.PFContentionExtra) ||
		!finite(aq.ATSContentionExtra)
}

// finite reports whether x is neither NaN nor infinite.
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
