package core

import (
	"math"
	"testing"

	"asmsim/internal/sim"
)

// fakeEst returns scripted estimates, one slice per call.
type fakeEst struct {
	outs [][]float64
	call int
}

func (f *fakeEst) Name() string { return "FAKE" }
func (f *fakeEst) Estimate(st *sim.QuantumStats) []float64 {
	out := f.outs[f.call]
	if f.call < len(f.outs)-1 {
		f.call++
	}
	return append([]float64(nil), out...)
}

func cleanStats(apps int) *sim.QuantumStats {
	return &sim.QuantumStats{Cycles: 1000, Apps: make([]sim.AppQuantum, apps)}
}

func TestSanitizePassThroughOnCleanData(t *testing.T) {
	g := Sanitize(&fakeEst{outs: [][]float64{{1.5, 2.0}, {3.0, 1.0}}})
	if g.Name() != "FAKE" {
		t.Fatalf("name %q", g.Name())
	}
	st := cleanStats(2)
	got := g.Estimate(st)
	if got[0] != 1.5 || got[1] != 2.0 {
		t.Fatalf("clean estimates altered: %v", got)
	}
	got = g.Estimate(st)
	if got[0] != 3.0 || got[1] != 1.0 {
		t.Fatalf("clean estimates altered: %v", got)
	}
}

func TestSanitizeFallsBackOnNonFiniteOutput(t *testing.T) {
	g := Sanitize(&fakeEst{outs: [][]float64{{3.0}, {math.NaN()}, {math.Inf(1)}}})
	st := cleanStats(1)
	if got := g.Estimate(st); got[0] != 3.0 {
		t.Fatalf("first estimate %v", got)
	}
	// NaN output: decay from prev 3.0 -> 1 + 0.5*(3-1) = 2.
	if got := g.Estimate(st); got[0] != 2.0 {
		t.Fatalf("NaN fallback %v, want 2.0", got)
	}
	// Inf output: decay again, 1 + 0.5*(2-1) = 1.5.
	if got := g.Estimate(st); got[0] != 1.5 {
		t.Fatalf("Inf fallback %v, want 1.5", got)
	}
}

func TestSanitizeFallsBackOnCorruptedCounters(t *testing.T) {
	// The inner estimator returns a clean-looking value, but the input
	// counters are corrupted — exactly what a stateless clamp would miss.
	g := Sanitize(&fakeEst{outs: [][]float64{{4.0}, {1.2}, {1.2}}})
	clean := cleanStats(1)
	if got := g.Estimate(clean); got[0] != 4.0 {
		t.Fatalf("clean estimate %v", got)
	}
	bad := cleanStats(1)
	bad.Apps[0].MemInterfCycles = math.NaN()
	if got := g.Estimate(bad); got[0] != 2.5 { // 1 + 0.5*(4-1)
		t.Fatalf("corrupted-counter fallback %v, want 2.5", got)
	}
	bad2 := cleanStats(1)
	bad2.Apps[0].PFContentionExtra = math.Inf(1)
	if got := g.Estimate(bad2); got[0] != 1.75 { // 1 + 0.5*(2.5-1)
		t.Fatalf("second fallback %v, want 1.75", got)
	}
}

func TestSanitizeFirstQuantumCorruptionDecaysToOne(t *testing.T) {
	// No previous estimate: the fallback decays from the neutral 1.
	g := Sanitize(&fakeEst{outs: [][]float64{{math.NaN()}}})
	if got := g.Estimate(cleanStats(1)); got[0] != 1.0 {
		t.Fatalf("first-quantum fallback %v, want 1.0", got)
	}
}

func TestSanitizeAllWrapsEverything(t *testing.T) {
	es := SanitizeAll([]Estimator{NewASM(), &fakeEst{outs: [][]float64{{1}}}})
	if len(es) != 2 {
		t.Fatalf("%d estimators", len(es))
	}
	for _, e := range es {
		if _, ok := e.(*guarded); !ok {
			t.Fatalf("%s not wrapped", e.Name())
		}
	}
}

// TestSanitizedASMStaysFiniteUnderCorruption drives the real ASM model
// with a corrupted snapshot and checks the guard holds the line.
func TestSanitizedASMStaysFiniteUnderCorruption(t *testing.T) {
	g := Sanitize(NewASM())
	st := cleanStats(2)
	st.Cycles = 100000
	st.EpochLen = 1000
	for a := range st.Apps {
		st.Apps[a].Retired = 50000
		st.Apps[a].L2Accesses = 1000
		st.Apps[a].EpochCount = 10
		st.Apps[a].EpochAccesses = 100
	}
	st.Apps[1].MemInterfCycles = math.NaN()
	for _, v := range g.Estimate(st) {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 1 || v > maxSlowdown {
			t.Fatalf("sanitized estimate %v out of range", v)
		}
	}
}
