package evtrace

import (
	"math"
	"strings"
)

// ScaleRows converts an integer attribution matrix (victim-major: raw[j][i]
// is the unscaled interference cycles cause i inflicted on victim j) into
// parallelism-scaled cycles such that row j, summed left-to-right
// (RowSum), reproduces rowTotals[j] bit-exactly. Each entry is
// apportioned proportionally to its raw share and the row's largest
// entry absorbs the floating-point remainder, so the matrix decomposes
// the controller's per-app accounting without inventing or losing a
// single bit of it.
func ScaleRows(raw [][]uint64, rowTotals []float64) [][]float64 {
	out := make([][]float64, len(raw))
	for j, row := range raw {
		scaled := make([]float64, len(row))
		out[j] = scaled
		var sum uint64
		maxIdx := -1
		for i, v := range row {
			sum += v
			if v > 0 && (maxIdx < 0 || v > row[maxIdx]) {
				maxIdx = i
			}
		}
		if sum == 0 || maxIdx < 0 || j >= len(rowTotals) {
			continue
		}
		total := rowTotals[j]
		var others float64
		for i, v := range row {
			if i == maxIdx || v == 0 {
				continue
			}
			scaled[i] = total * (float64(v) / float64(sum))
			others += scaled[i]
		}
		scaled[maxIdx] = total - others
		// total-others can round an ulp away from the value that makes the
		// left-to-right sum land exactly. The sequential sum is monotone in
		// the absorber, so walk the absorber until the reconstruction is
		// bit-exact; real rows converge in a step or two. One failure mode
		// remains: when a smaller entry's sub-ulp bits put every exact sum
		// on a round-half-even tie, the absorber steps straddle the total
		// without hitting it — perturbing that entry by one of its own
		// ulps (a harmless ~1e-16 relative distortion) breaks the parity.
		solve := func() bool {
			for steps := 0; steps < 64; steps++ {
				s := RowSum(scaled)
				if s == total {
					return true
				}
				if s < total {
					scaled[maxIdx] = math.Nextafter(scaled[maxIdx], math.Inf(1))
				} else {
					scaled[maxIdx] = math.Nextafter(scaled[maxIdx], math.Inf(-1))
				}
			}
			return RowSum(scaled) == total
		}
		if !solve() {
			for i := range scaled {
				if i == maxIdx || scaled[i] == 0 {
					continue
				}
				scaled[i] = math.Nextafter(scaled[i], math.Inf(-1))
				if solve() {
					break
				}
			}
		}
	}
	return out
}

// RowSum is the reconstruction ScaleRows guarantees bit-exact: the plain
// left-to-right sum of a scaled row.
func RowSum(row []float64) float64 {
	var s float64
	for _, v := range row {
		s += v
	}
	return s
}

// AddMatrix accumulates src into dst element-wise, growing dst rows as
// needed (dst and src are victim-major float matrices of equal shape in
// practice).
func AddMatrix(dst, src [][]float64) [][]float64 {
	for j, row := range src {
		for j >= len(dst) {
			dst = append(dst, nil)
		}
		for i, v := range row {
			for i >= len(dst[j]) {
				dst[j] = append(dst[j], 0)
			}
			dst[j][i] += v
		}
	}
	return dst
}

// Summary aggregates a per-quantum attribution series: element-wise sums
// of the memory and cache matrices, summed row totals, and summed
// per-app stats. Returns the zero value for an empty series.
type Summary struct {
	Apps         []string
	Quanta       int
	Cycles       uint64 // total cycles covered
	Mem          [][]float64
	MemRowTotals []float64
	Cache        [][]float64
	AppStats     []AppQuantumStats
}

// Summarize folds the series into one aggregate Summary.
func Summarize(quanta []QuantumAttribution) Summary {
	var s Summary
	for _, q := range quanta {
		if s.Apps == nil {
			s.Apps = q.Apps
			s.AppStats = make([]AppQuantumStats, len(q.AppStats))
			for j := range q.AppStats {
				s.AppStats[j].Name = q.AppStats[j].Name
			}
			s.MemRowTotals = make([]float64, len(q.MemRowTotals))
		}
		s.Quanta++
		s.Cycles += q.Cycles
		s.Mem = AddMatrix(s.Mem, q.Mem)
		s.Cache = AddMatrix(s.Cache, q.Cache)
		for j, v := range q.MemRowTotals {
			if j < len(s.MemRowTotals) {
				s.MemRowTotals[j] += v
			}
		}
		for j, st := range q.AppStats {
			if j >= len(s.AppStats) {
				break
			}
			a := &s.AppStats[j]
			a.Retired += st.Retired
			a.MemStallCycles += st.MemStallCycles
			a.QuantumHitTime += st.QuantumHitTime
			a.QuantumMissTime += st.QuantumMissTime
			a.QueueingCycles += st.QueueingCycles
			a.MemInterf += st.MemInterf
			a.CacheInterf += st.CacheInterf
		}
	}
	return s
}

// SplitByApp groups a mixed attribution series by its app-name set.
// When several single-app alone-run replicas share one tracer (span
// export for ground-truth replays), their per-quantum snapshots
// interleave in emission order; grouping by the Apps fingerprint
// recovers one coherent series per replica, each summarizable on its
// own. The fingerprint joins app names with "+", matching workload.Mix.
func SplitByApp(quanta []QuantumAttribution) map[string][]QuantumAttribution {
	out := map[string][]QuantumAttribution{}
	for _, q := range quanta {
		key := strings.Join(q.Apps, "+")
		out[key] = append(out[key], q)
	}
	return out
}

// CPIStack is one application's cycles-per-instruction decomposition over
// a traced window: compute (everything not memory-stalled), memory time
// the app would also have spent alone, and the two interference
// components the attribution matrix separates.
type CPIStack struct {
	Name string
	// CPI is total cycles / retired instructions (0 when nothing retired).
	CPI float64
	// Fractions of total cycles, summing to 1 when Retired > 0.
	Compute     float64
	MemAlone    float64
	CacheInterf float64
	MemInterf   float64
}

// CPIStacks derives per-app CPI stacks from an aggregate summary. The
// interference components are clamped into the measured memory-stall
// time: attribution charges raw occupancy cycles, which overlapping
// requests can exceed, so each component is capped by what remains of
// the stall budget.
func (s Summary) CPIStacks() []CPIStack {
	return s.cpiStacks(nil)
}

// CPIStacksMeasured derives per-app CPI stacks with the mem-alone
// segment *measured* from traced alone-run replays instead of derived by
// subtraction: alone maps each app name (the SplitByApp fingerprint of a
// single-app replica) to its summarized alone-run series, and the
// replica's memory-stall cycles per retired instruction — replayed over
// the same instruction stream — are scaled to the shared run's retired
// count. Apps with no alone summary (or one that retired nothing) fall
// back to the derived segment. Model premise made testable: the measured
// and derived segments should agree up to attribution clamping error.
func (s Summary) CPIStacksMeasured(alone map[string]Summary) []CPIStack {
	return s.cpiStacks(alone)
}

func (s Summary) cpiStacks(aloneSums map[string]Summary) []CPIStack {
	out := make([]CPIStack, len(s.AppStats))
	for j, st := range s.AppStats {
		cs := CPIStack{Name: st.Name}
		total := float64(s.Cycles)
		if total > 0 {
			stall := float64(st.MemStallCycles)
			if stall > total {
				stall = total
			}
			mem := st.MemInterf
			if mem > stall {
				mem = stall
			}
			cache := st.CacheInterf
			if cache > stall-mem {
				cache = stall - mem
			}
			alone := stall - mem - cache
			if as, ok := aloneSums[st.Name]; ok && len(as.AppStats) > 0 {
				ast := as.AppStats[0]
				if ast.Retired > 0 && st.Retired > 0 {
					// Alone memory time for the shared run's work: the
					// replica's stall cycles per instruction times the shared
					// retired count, clamped into the remaining stall budget.
					measured := float64(ast.MemStallCycles) / float64(ast.Retired) * float64(st.Retired)
					if measured > stall-mem-cache {
						measured = stall - mem - cache
					}
					alone = measured
				}
			}
			cs.Compute = (total - stall) / total
			cs.MemAlone = alone / total
			cs.CacheInterf = cache / total
			cs.MemInterf = mem / total
			if st.Retired > 0 {
				cs.CPI = total / float64(st.Retired)
			}
		}
		out[j] = cs
	}
	return out
}
