package evtrace

import (
	"reflect"
	"testing"
)

func sinkQuantum(q int, apps []string) QuantumAttribution {
	return QuantumAttribution{
		Quantum: q, EndCycle: uint64(q+1) * 1000, Cycles: 1000,
		Apps: apps,
		AppStats: []AppQuantumStats{
			{Name: apps[0], Retired: uint64(100 * (q + 1)), MemStallCycles: 50},
		},
	}
}

func TestSinkTracerRetainsAndForwards(t *testing.T) {
	s := NewSink()
	var seen []int
	s.SetOnQuantum(func(q QuantumAttribution) { seen = append(seen, q.Quantum) })
	s.BeginRun([]string{"a"}) // no-op for a sink beyond name retention
	if s.SampleMiss() {
		t.Fatal("a sink tracer must never sample spans")
	}
	s.MissSpan(MissSpan{App: 0}) // must not panic or write
	for q := 0; q < 3; q++ {
		s.Quantum(sinkQuantum(q, []string{"a"}))
	}
	if got := len(s.Quanta()); got != 3 {
		t.Fatalf("retained %d quanta, want 3", got)
	}
	if !reflect.DeepEqual(seen, []int{0, 1, 2}) {
		t.Fatalf("subscriber saw %v", seen)
	}
	// Unsubscribe stops the callbacks; retention continues.
	s.SetOnQuantum(nil)
	s.Quantum(sinkQuantum(3, []string{"a"}))
	if len(seen) != 3 || len(s.Quanta()) != 4 {
		t.Fatalf("after unsubscribe: seen=%d retained=%d", len(seen), len(s.Quanta()))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("sink Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSetOnQuantumNilTracer(t *testing.T) {
	var tr *Tracer
	tr.SetOnQuantum(func(QuantumAttribution) {}) // must not panic
}

// TestSinkQuantumAllocations bounds the sink path: retaining a snapshot
// costs at most the slice append, never the trace-event construction.
func TestSinkQuantumAllocations(t *testing.T) {
	s := NewSink()
	qs := make([]QuantumAttribution, 0, 4096)
	s.mu.Lock()
	s.quanta = qs // pre-size so append does not grow mid-measurement
	s.mu.Unlock()
	q := sinkQuantum(0, []string{"a"})
	allocs := testing.AllocsPerRun(100, func() { s.Quantum(q) })
	if allocs != 0 {
		t.Fatalf("sink Quantum allocated %v times per call, want 0", allocs)
	}
}

func TestSplitByApp(t *testing.T) {
	series := []QuantumAttribution{
		sinkQuantum(0, []string{"mcf"}),
		sinkQuantum(0, []string{"lbm"}),
		sinkQuantum(1, []string{"mcf"}),
		sinkQuantum(0, []string{"mcf", "lbm"}),
		sinkQuantum(1, []string{"lbm"}),
	}
	got := SplitByApp(series)
	if len(got) != 3 {
		t.Fatalf("split into %d groups, want 3", len(got))
	}
	if len(got["mcf"]) != 2 || got["mcf"][0].Quantum != 0 || got["mcf"][1].Quantum != 1 {
		t.Fatalf("mcf series = %+v", got["mcf"])
	}
	if len(got["lbm"]) != 2 {
		t.Fatalf("lbm series = %+v", got["lbm"])
	}
	if len(got["mcf+lbm"]) != 1 {
		t.Fatalf("mixed series = %+v", got["mcf+lbm"])
	}
	if SplitByApp(nil) == nil {
		t.Fatal("SplitByApp(nil) must return an empty map, not nil")
	}
}

// TestOnQuantumWithFileTracer: the subscriber also fires on a full
// file-writing tracer, after the events are emitted.
func TestOnQuantumWithFileTracer(t *testing.T) {
	var sink []QuantumAttribution
	var buf writerBuffer
	tr := New(&buf, Config{SampleEvery: 1})
	tr.SetOnQuantum(func(q QuantumAttribution) { sink = append(sink, q) })
	tr.Quantum(sinkQuantum(0, []string{"a"}))
	tr.Quantum(sinkQuantum(1, []string{"a"}))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sink) != 2 || sink[1].Quantum != 1 {
		t.Fatalf("subscriber saw %+v", sink)
	}
	if len(buf.data) == 0 {
		t.Fatal("file tracer wrote nothing")
	}
}

type writerBuffer struct{ data []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}
