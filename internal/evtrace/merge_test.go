package evtrace

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeNodeFixture writes a realistic node trace through the real Tracer
// API: `rounds` evaluation rounds, each of `quanta` quanta of `qlen`
// cycles, with a "round" instant at each round start and irrational
// matrix values so bit-identity is a real test, not an integer accident.
func writeNodeFixture(t *testing.T, path string, node int, names []string, rounds, quanta int, qlen uint64) {
	t.Helper()
	tr, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr.BeginRun(names)
	n := len(names)
	var clock uint64
	for r := 0; r < rounds; r++ {
		tr.SetClockOffset(clock)
		tr.Instant("round", "cluster", 0, map[string]any{
			"round": r, "cycle": clock, "node": node,
		})
		for q := 0; q < quanta; q++ {
			qa := QuantumAttribution{
				Quantum:  q,
				EndCycle: uint64(q+1) * qlen,
				Cycles:   qlen,
				Apps:     names,
				Mem:      make([][]float64, n),
				Cache:    make([][]float64, n),
			}
			qa.MemRowTotals = make([]float64, n)
			for j := 0; j < n; j++ {
				qa.Mem[j] = make([]float64, n+1)
				qa.Cache[j] = make([]float64, n+1)
				for i := 0; i <= n; i++ {
					// Values with full mantissas, distinct per (node, round,
					// quantum, victim, cause).
					seed := float64(node*1000+r*100+q*10+j) + float64(i)*0.1
					qa.Mem[j][i] = math.Sqrt(seed+2) * 1e3
					qa.Cache[j][i] = math.Cbrt(seed+3) * 1e2
				}
				qa.MemRowTotals[j] = RowSum(qa.Mem[j])
				statSeed := float64(node*1000 + r*100 + q*10 + j)
				qa.AppStats = append(qa.AppStats, AppQuantumStats{
					Name:           names[j],
					Retired:        uint64(node+1) * uint64(r+1) * uint64(q+1) * 1000,
					MemStallCycles: uint64(j+1) * 37,
					MemInterf:      math.Sqrt(statSeed + 5),
					CacheInterf:    math.Cbrt(statSeed + 7),
				})
			}
			tr.Quantum(qa)
		}
		clock += uint64(quanta) * qlen
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func loadFixtures(t *testing.T, specs [][]string, rounds []int) []*NodeTrace {
	t.Helper()
	dir := t.TempDir()
	nodes := make([]*NodeTrace, len(specs))
	for k, names := range specs {
		p := filepath.Join(dir, "node.trace.json")
		p = filepath.Join(dir, "node"+string(rune('0'+k))+".trace.json")
		writeNodeFixture(t, p, k, names, rounds[k], 2, 100000)
		nt, err := LoadNodeTrace(p, k)
		if err != nil {
			t.Fatal(err)
		}
		nodes[k] = nt
	}
	return nodes
}

// TestMergePreservesNodeMatrices is the acceptance gate: every per-node
// diagonal block of the merged cluster attribution matrix must be
// bit-identical to that node's standalone summarized matrix, after a
// full write→load→merge round trip through JSON.
func TestMergePreservesNodeMatrices(t *testing.T) {
	specs := [][]string{{"mcf", "libquantum"}, {"astar", "lbm", "milc"}}
	nodes := loadFixtures(t, specs, []int{3, 3})
	m, err := Merge(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if m.NApps != 5 {
		t.Fatalf("NApps = %d, want 5", m.NApps)
	}
	for k, nt := range nodes {
		want := Summarize(nt.Quanta)
		off := m.Offsets[k]
		nk := len(nt.Names)
		for j := 0; j < nk; j++ {
			row := off + j
			if m.MemRowTotals[row] != want.MemRowTotals[j] {
				t.Errorf("node %d victim %d: MemRowTotals %v != %v",
					k, j, m.MemRowTotals[row], want.MemRowTotals[j])
			}
			for i := 0; i < nk; i++ {
				if got, w := m.Mem[row][off+i], want.Mem[j][i]; got != w {
					t.Errorf("node %d Mem[%d][%d]: %v != %v (bit mismatch)", k, j, i, got, w)
				}
				if got, w := m.Cache[row][off+i], want.Cache[j][i]; got != w {
					t.Errorf("node %d Cache[%d][%d]: %v != %v", k, j, i, got, w)
				}
			}
			// System pseudo-cause: node column nk lands in cluster column NApps.
			if got, w := m.Mem[row][m.NApps], want.Mem[j][nk]; got != w {
				t.Errorf("node %d victim %d system col: %v != %v", k, j, got, w)
			}
			if got, w := m.Cache[row][m.NApps], want.Cache[j][nk]; got != w {
				t.Errorf("node %d victim %d cache system col: %v != %v", k, j, got, w)
			}
			// Off-diagonal blocks are zero: nodes share no hardware.
			for i := 0; i < m.NApps; i++ {
				if i >= off && i < off+nk {
					continue
				}
				if m.Mem[row][i] != 0 || m.Cache[row][i] != 0 {
					t.Errorf("node %d victim %d: nonzero cross-node cell at col %d", k, j, i)
				}
			}
			// AppStats integers ride along unchanged.
			ws := want.AppStats[j]
			gs := m.AppStats[row]
			if gs.Retired != ws.Retired || gs.MemStallCycles != ws.MemStallCycles ||
				gs.MemInterf != ws.MemInterf || gs.CacheInterf != ws.CacheInterf {
				t.Errorf("node %d app %d stats diverged: got %+v want %+v", k, j, gs, ws)
			}
		}
	}
	// And the same identity must survive the merged-file round trip: write
	// the merged trace, re-load its cluster attribution instant, compare.
	var buf bytes.Buffer
	if err := m.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				Attribution QuantumAttribution `json:"attribution"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var cluster *QuantumAttribution
	nodeAttr := 0
	for i := range doc.TraceEvents {
		switch doc.TraceEvents[i].Name {
		case "attribution":
			if cluster != nil {
				t.Fatal("merged file has more than one cluster attribution instant")
			}
			cluster = &doc.TraceEvents[i].Args.Attribution
		case "node-attribution":
			nodeAttr++
		}
	}
	if cluster == nil {
		t.Fatal("merged file has no cluster attribution instant")
	}
	if wantN := 2 * 3 * 2; nodeAttr != wantN { // 2 nodes × 3 rounds × 2 quanta
		t.Errorf("merged file has %d node-attribution events, want %d", nodeAttr, wantN)
	}
	if !reflect.DeepEqual(cluster.Mem, m.Mem) || !reflect.DeepEqual(cluster.Cache, m.Cache) {
		t.Error("cluster attribution did not survive the JSON round trip bit-exactly")
	}
	if !reflect.DeepEqual(cluster.MemRowTotals, m.MemRowTotals) {
		t.Error("MemRowTotals did not survive the JSON round trip")
	}
}

// TestMergeClockReconciliation: nodes that reach the same round at
// different local clocks are aligned to the latest arrival, and the
// reported skew is the spread the alignment absorbed.
func TestMergeClockReconciliation(t *testing.T) {
	// Node 0 runs 3 rounds of 2×100k cycles (round starts at 0, 200k,
	// 400k). Node 1 only completes 2 rounds' cycles over 3 round marks by
	// simulating shorter quanta — emulate with differing quanta cycles.
	dir := t.TempDir()
	p0 := filepath.Join(dir, "n0.json")
	p1 := filepath.Join(dir, "n1.json")
	writeNodeFixture(t, p0, 0, []string{"a", "b"}, 3, 2, 100000)
	// Node 1: same rounds but 60k-cycle quanta → round starts 0, 120k, 240k.
	writeNodeFixture(t, p1, 1, []string{"c"}, 3, 2, 60000)
	n0, err := LoadNodeTrace(p0, 0)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := LoadNodeTrace(p1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge([]*NodeTrace{n0, n1})
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := []ClusterRound{
		{Round: 0, Cycle: 0, Skew: 0},
		{Round: 1, Cycle: 200000, Skew: 80000},
		{Round: 2, Cycle: 400000, Skew: 160000},
	}
	if !reflect.DeepEqual(m.Rounds, wantRounds) {
		t.Errorf("Rounds = %+v, want %+v", m.Rounds, wantRounds)
	}
	if m.MaxSkewCycles != 160000 {
		t.Errorf("MaxSkewCycles = %d, want 160000", m.MaxSkewCycles)
	}
	// Node 0 is never shifted (it is the latest arrival everywhere);
	// node 1's round-2 events shift by 160k cycles.
	if got := m.shiftUs(0, 450000.0/1000.0); got != 0 {
		t.Errorf("node 0 shift = %v, want 0", got)
	}
	if got := m.shiftUs(1, 250000.0/1000.0); got != 160000.0/1000.0 {
		t.Errorf("node 1 late shift = %v µs, want 160", got)
	}
	if got := m.shiftUs(1, 130000.0/1000.0); got != 80000.0/1000.0 {
		t.Errorf("node 1 mid shift = %v µs, want 80", got)
	}
}

// TestMergePidNamespacing: merged events land in per-node pid blocks of
// PidStride, with process metadata for every (node, app) pair.
func TestMergePidNamespacing(t *testing.T) {
	specs := [][]string{{"mcf", "lbm"}, {"milc"}}
	nodes := loadFixtures(t, specs, []int{1, 1})
	m, err := Merge(nodes)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc rawTraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	wantPids := map[int]bool{0: false, 1: false, PidStride: false}
	sortIdx := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" && e.Pid != nil {
			if _, ok := wantPids[*e.Pid]; ok {
				wantPids[*e.Pid] = true
			} else {
				t.Errorf("unexpected process_name pid %d", *e.Pid)
			}
		}
		if e.Ph == "M" && e.Name == "process_sort_index" {
			sortIdx++
		}
		if e.Ph == "C" && e.Pid != nil {
			// interference counters from node 1 must live at pid ≥ PidStride
			// exactly when their origin pid says so; all node-0 counters stay
			// below PidStride. Node composition: node 0 has 2 apps (pids 0,1),
			// node 1 has 1 app (pid 1000).
			if *e.Pid != 0 && *e.Pid != 1 && *e.Pid != PidStride {
				t.Errorf("counter event at unexpected pid %d", *e.Pid)
			}
		}
	}
	for pid, seen := range wantPids {
		if !seen {
			t.Errorf("missing process_name metadata for pid %d", pid)
		}
	}
	if sortIdx != 3 {
		t.Errorf("process_sort_index count = %d, want 3", sortIdx)
	}
}

// TestMergeFilesEndToEnd drives the one-call wrapper and checks the
// merged document passes the same structural validation tracesum -check
// applies (phases known, ts present, exactly one attribution instant).
func TestMergeFilesEndToEnd(t *testing.T) {
	dir := t.TempDir()
	p0 := filepath.Join(dir, "n0.json")
	p1 := filepath.Join(dir, "n1.json")
	writeNodeFixture(t, p0, 0, []string{"a"}, 2, 1, 50000)
	writeNodeFixture(t, p1, 1, []string{"b"}, 2, 1, 50000)
	out := filepath.Join(dir, "merged.json")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeFiles(f, []string{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != 2 || m.NApps != 2 {
		t.Fatalf("merged %d nodes / %d apps, want 2/2", len(m.Nodes), m.NApps)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc rawTraceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("merged file is not valid JSON: %v", err)
	}
	attrib := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X", "M", "i", "I", "C", "B", "E":
		default:
			t.Errorf("unknown phase %q in merged file", e.Ph)
		}
		if e.Ph != "M" {
			if e.Ts == nil {
				t.Errorf("event %q missing ts", e.Name)
			} else if *e.Ts < 0 {
				t.Errorf("event %q has negative ts %v", e.Name, *e.Ts)
			}
			if e.Pid == nil {
				t.Errorf("event %q missing pid", e.Name)
			}
		}
		if e.Name == "attribution" && e.Ph == "i" {
			attrib++
		}
	}
	if attrib != 1 {
		t.Errorf("merged file has %d attribution instants, want exactly 1", attrib)
	}
	if doc.OtherData["pid_stride"] == nil || doc.OtherData["max_skew_cycles"] == nil {
		t.Error("merged file otherData missing pid_stride / max_skew_cycles")
	}
}

// TestMergeErrors: empty input and unreadable files fail loudly.
func TestMergeErrors(t *testing.T) {
	if _, err := Merge(nil); err == nil {
		t.Error("Merge(nil) did not error")
	}
	if _, err := LoadNodeTrace(filepath.Join(t.TempDir(), "absent.json"), 0); err == nil {
		t.Error("LoadNodeTrace on a missing file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadNodeTrace(bad, 0); err == nil {
		t.Error("LoadNodeTrace on garbage did not error")
	}
}
