// Package evtrace is the cycle-level event-tracing subsystem: it records
// per-request lifecycle spans (miss detection → controller enqueue → bank
// service → completion) with every queueing segment attributed to the
// application that caused the wait, aggregates the per-quantum N×N
// interference attribution matrix (cycles app i delayed app j, split
// shared-cache vs main-memory), and streams both as a Perfetto-loadable
// chrome-trace-event JSON file.
//
// Attribution is exact, not sampled: every interference cycle the memory
// controller charges has a single deterministic cause (the app occupying
// the bank, then the data bus, then the command slot), so the matrix is
// accumulated from the same accounting pass that feeds
// dram.Controller.InterferenceCycles — per victim, the matrix row sums to
// the controller's per-app total bit-exactly (see ScaleRows). Span
// recording, by contrast, is sampled (Config.SampleEvery) to bound file
// size and overhead; sampling a span never changes any accounting.
//
// A nil *Tracer is a no-op on every method, so instrumented code needs no
// enabled-checks beyond one nil test, and the disabled path allocates
// nothing.
package evtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// cyclesPerMicro converts CPU cycles to trace microseconds: the trace
// presents one cycle as one nanosecond, so all relative timings (queue
// waits, service times) read directly in Perfetto regardless of the
// simulated clock.
const cyclesPerMicro = 1000.0

// spanLanes is the number of per-process trace lanes sampled miss spans
// rotate through. Chrome "X" events on one lane render nested-only;
// rotating lanes keeps concurrently outstanding sampled misses from
// stacking into one misleading hierarchy.
const spanLanes = 8

// Config parameterizes a Tracer.
type Config struct {
	// SampleEvery records every Nth completed demand-miss span (1-in-N
	// sampling); values <= 1 record every miss. Attribution matrices are
	// always exact regardless of this knob — only span emission is
	// sampled.
	SampleEvery int
}

// MissSpan is one completed demand miss's lifecycle, in CPU cycles. All
// timestamps come from the timing bookkeeping the simulator already
// keeps (missTxn.start, dram.Request.Enqueue/Start/Complete).
type MissSpan struct {
	App  int    // requesting application slot
	Line uint64 // 64 B line address

	Detect   uint64 // cycle the shared-cache miss was detected
	Enqueue  uint64 // cycle the request entered the memory controller
	Start    uint64 // cycle its first DRAM command issued
	Complete uint64 // cycle the last data beat transferred
	Done     uint64 // cycle the fill reached the core side

	Channel int
	Bank    int
	RowHit  bool

	// InterfCycles is the request's total attributed interference; Causes
	// breaks it down by cause app (index len-1 is the system/refresh
	// pseudo-cause). Causes may be nil when per-cause tracking was off.
	InterfCycles uint64
	Causes       []uint64

	// CacheCause is the app whose shared-cache insertion evicted this
	// line (making the miss a contention miss), or -1 when the line was
	// not a cross-application eviction victim.
	CacheCause int
}

// AppQuantumStats is the per-app slice of a quantum the CPI stack is
// built from (all in CPU cycles except Retired).
type AppQuantumStats struct {
	Name            string  `json:"name"`
	Retired         uint64  `json:"retired"`
	MemStallCycles  uint64  `json:"mem_stall_cycles"`
	QuantumHitTime  uint64  `json:"quantum_hit_time"`
	QuantumMissTime uint64  `json:"quantum_miss_time"`
	QueueingCycles  uint64  `json:"queueing_cycles"`
	MemInterf       float64 `json:"mem_interf_cycles"`
	CacheInterf     float64 `json:"cache_interf_cycles"`
}

// QuantumAttribution is one quantum's interference attribution snapshot.
// Matrices are victim-major: M[j][i] is the cycles cause i inflicted on
// victim j this quantum; column index NumApps (the last) is the
// system/refresh pseudo-cause. Mem rows sum bit-exactly to
// MemRowTotals[j], which in turn equals the controller-side accounting
// (dram.System.InterferenceCycles summed in channel order).
type QuantumAttribution struct {
	Quantum  int      `json:"quantum"`
	EndCycle uint64   `json:"end_cycle"`
	Cycles   uint64   `json:"cycles"` // quantum length Q
	Apps     []string `json:"apps"`

	Mem          [][]float64 `json:"mem"`
	MemRowTotals []float64   `json:"mem_row_totals"`
	Cache        [][]float64 `json:"cache"`

	AppStats []AppQuantumStats `json:"app_stats"`
}

// Tracer streams trace events to one JSON file and retains the
// per-quantum attribution series. It is safe for concurrent use (sweep
// workers may share one tracer); a nil Tracer is a no-op.
type Tracer struct {
	sampleEvery uint64
	missCount   atomic.Uint64 // demand misses seen (sampling clock)
	spanCount   atomic.Uint64 // sampled spans emitted (lane rotation)

	// clockOffset (cycles) shifts every emitted event timestamp. A
	// cluster node re-runs its mix from simulated cycle zero each
	// evaluation round; the balancer advances this offset between rounds
	// so one node's rounds lay out sequentially on a single node-local
	// clock instead of stacking at the origin. Retained attribution
	// snapshots (Quanta) keep their run-local EndCycle — the offset is a
	// presentation-clock concern only and never touches accounting.
	clockOffset atomic.Uint64

	mu     sync.Mutex
	bw     *bufio.Writer // nil for a matrix-only sink tracer (NewSink)
	c      io.Closer
	wrote  bool // any event written yet (comma management)
	closed bool
	err    error

	onQuantum func(QuantumAttribution) // optional live subscriber

	apps   []string
	quanta []QuantumAttribution
}

// New returns a tracer streaming chrome-trace JSON to w.
func New(w io.Writer, cfg Config) *Tracer {
	se := cfg.SampleEvery
	if se < 1 {
		se = 1
	}
	t := &Tracer{sampleEvery: uint64(se), bw: bufio.NewWriter(w)}
	t.bw.WriteString(`{"displayTimeUnit":"ns","otherData":{"tool":"asmsim","cycles_per_us":1000},"traceEvents":[`)
	return t
}

// NewSink returns a matrix-only tracer: it accumulates the per-quantum
// attribution series (Quanta, SetOnQuantum) but writes no trace file and
// never samples spans. The live dashboard uses it to obtain exact
// attribution without paying for JSON span emission when no -trace file
// was requested.
func NewSink() *Tracer {
	return &Tracer{sampleEvery: 1}
}

// SetOnQuantum registers fn to receive every per-quantum attribution
// snapshot as it is emitted (the dashboard's live feed). Safe on a nil
// tracer; a nil fn unsubscribes.
func (t *Tracer) SetOnQuantum(fn func(QuantumAttribution)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onQuantum = fn
	t.mu.Unlock()
}

// Open creates (or truncates) path and streams the trace to it.
func Open(path string, cfg Config) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("evtrace: %w", err)
	}
	t := New(f, cfg)
	t.c = f
	return t, nil
}

// SetClockOffset shifts all subsequently emitted event timestamps by
// the given number of cycles. Cluster rounds restart the simulated
// clock at zero; setting the offset to the node's accumulated cycles
// before each round keeps the node's trace timeline monotone. Safe on a
// nil tracer and from any goroutine.
func (t *Tracer) SetClockOffset(cycles uint64) {
	if t == nil {
		return
	}
	t.clockOffset.Store(cycles)
}

// ClockOffset returns the current timestamp shift in cycles (0 on nil).
func (t *Tracer) ClockOffset() uint64 {
	if t == nil {
		return 0
	}
	return t.clockOffset.Load()
}

// Instant emits one global instant event ("ph":"i") at the given cycle
// (clock offset applied), carrying args verbatim. The cluster balancer
// uses it for round boundaries and migration decisions, so trace
// consumers can reconcile per-node clocks and cross-check the
// migration ledger. No-op on a nil or matrix-only (NewSink) tracer.
func (t *Tracer) Instant(name, cat string, cycle uint64, args map[string]any) {
	if t == nil {
		return
	}
	t.emit(event{
		Name: name, Ph: "i", S: "g", Cat: cat,
		Ts:  float64(cycle+t.clockOffset.Load()) / cyclesPerMicro,
		Pid: 0, Tid: 0, Args: args,
	})
}

// SampleEvery returns the span sampling period (0 for a nil tracer).
func (t *Tracer) SampleEvery() uint64 {
	if t == nil {
		return 0
	}
	return t.sampleEvery
}

// event is one chrome-trace-event JSON object.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// emit appends one event under the lock; errors are sticky and reported
// by Close.
func (t *Tracer) emit(evs ...event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(evs...)
}

func (t *Tracer) emitLocked(evs ...event) {
	if t.err != nil || t.closed || t.bw == nil {
		return
	}
	for _, e := range evs {
		b, err := json.Marshal(e)
		if err != nil {
			t.err = fmt.Errorf("evtrace: %w", err)
			return
		}
		if t.wrote {
			t.bw.WriteString(",\n")
		}
		t.wrote = true
		if _, err := t.bw.Write(b); err != nil {
			t.err = fmt.Errorf("evtrace: %w", err)
			return
		}
	}
}

// BeginRun names the traced applications: pid j is app slot j. The first
// call wins; later runs sharing the tracer (experiment sweeps) reuse the
// pids, so traces of concurrent sweeps are best read via their
// attribution events, which carry app names per quantum.
func (t *Tracer) BeginRun(names []string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.apps != nil {
		return
	}
	t.apps = append([]string(nil), names...)
	for i, n := range names {
		t.emitLocked(event{
			Name: "process_name", Ph: "M", Pid: i,
			Args: map[string]any{"name": fmt.Sprintf("app%d %s", i, n)},
		})
	}
}

// SampleMiss reports whether the next completed demand miss should have
// its span recorded (the 1-in-N sampling clock). Safe from concurrent
// simulators; a nil tracer never samples.
func (t *Tracer) SampleMiss() bool {
	if t == nil || t.bw == nil {
		return false
	}
	return t.missCount.Add(1)%t.sampleEvery == 0
}

// MissSpan records one sampled demand-miss lifecycle as three nested
// "X" slices on the victim's process: the whole miss, its controller
// queue wait, and its bank service.
func (t *Tracer) MissSpan(sp MissSpan) {
	if t == nil {
		return
	}
	lane := int(t.spanCount.Add(1) % spanLanes)
	args := map[string]any{
		"line":          fmt.Sprintf("%#x", sp.Line),
		"channel":       sp.Channel,
		"bank":          sp.Bank,
		"row_hit":       sp.RowHit,
		"interf_cycles": sp.InterfCycles,
	}
	if sp.CacheCause >= 0 {
		args["cache_cause_app"] = sp.CacheCause
	}
	if sp.Causes != nil {
		causes := map[string]any{}
		for i, v := range sp.Causes {
			if v == 0 {
				continue
			}
			key := fmt.Sprintf("app%d", i)
			if i == len(sp.Causes)-1 {
				key = "system"
			}
			causes[key] = v
		}
		if len(causes) > 0 {
			args["cause_cycles"] = causes
		}
	}
	off := t.clockOffset.Load()
	us := func(c uint64) float64 { return float64(c+off) / cyclesPerMicro }
	dur := func(a, b uint64) float64 {
		if b < a {
			return 0
		}
		return float64(b-a) / cyclesPerMicro
	}
	evs := []event{{
		Name: "miss", Ph: "X", Cat: "miss",
		Ts: us(sp.Detect), Dur: dur(sp.Detect, sp.Done),
		Pid: sp.App, Tid: lane, Args: args,
	}}
	if sp.Enqueue >= sp.Detect && sp.Start >= sp.Enqueue {
		evs = append(evs, event{
			Name: "mc-queue", Ph: "X", Cat: "miss",
			Ts: us(sp.Enqueue), Dur: dur(sp.Enqueue, sp.Start),
			Pid: sp.App, Tid: lane,
		})
	}
	if sp.Complete >= sp.Start {
		evs = append(evs, event{
			Name: "bank-service", Ph: "X", Cat: "miss",
			Ts: us(sp.Start), Dur: dur(sp.Start, sp.Complete),
			Pid: sp.App, Tid: lane,
		})
	}
	t.emit(evs...)
}

// Quantum records one quantum's attribution snapshot: an instant event
// carrying the full matrices plus one counter event per victim app
// (memory- and cache-side interference), and retains the snapshot for
// Quanta and Summary.
func (t *Tracer) Quantum(q QuantumAttribution) {
	if t == nil {
		return
	}
	var evs []event
	if t.bw == nil {
		// Matrix-only sink: retain and forward the snapshot, skip the
		// trace-event construction entirely.
		t.mu.Lock()
		t.quanta = append(t.quanta, q)
		fn := t.onQuantum
		t.mu.Unlock()
		if fn != nil {
			fn(q)
		}
		return
	}
	off := t.clockOffset.Load()
	evs = make([]event, 0, len(q.Apps)+1)
	evs = append(evs, event{
		Name: "attribution", Ph: "i", S: "g", Cat: "attribution",
		Ts: float64(q.EndCycle+off) / cyclesPerMicro, Pid: 0, Tid: 0,
		Args: map[string]any{"attribution": q},
	})
	for j := range q.Apps {
		var mem float64
		if j < len(q.MemRowTotals) {
			mem = q.MemRowTotals[j]
		}
		var cache float64
		if j < len(q.Cache) {
			for _, v := range q.Cache[j] {
				cache += v
			}
		}
		evs = append(evs, event{
			Name: "interference", Ph: "C",
			Ts: float64(q.EndCycle+off) / cyclesPerMicro, Pid: j, Tid: 0,
			Args: map[string]any{"mem": mem, "cache": cache},
		})
	}
	t.mu.Lock()
	t.quanta = append(t.quanta, q)
	t.emitLocked(evs...)
	fn := t.onQuantum
	t.mu.Unlock()
	// The live subscriber runs outside the lock so a slow consumer can
	// never serialize against concurrent span emission.
	if fn != nil {
		fn(q)
	}
}

// Quanta returns the retained per-quantum attribution series (nil for a
// nil tracer). The returned slice is shared; callers must not mutate it.
func (t *Tracer) Quanta() []QuantumAttribution {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.quanta
}

// Err returns the first write error, if any, without closing.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close terminates the JSON document, flushes, and returns the first
// write error. Closing a nil tracer is a no-op.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		if t.bw == nil {
			return t.err
		}
		if _, werr := t.bw.WriteString("\n]}\n"); t.err == nil && werr != nil {
			t.err = fmt.Errorf("evtrace: %w", werr)
		}
		if ferr := t.bw.Flush(); t.err == nil && ferr != nil {
			t.err = fmt.Errorf("evtrace: %w", ferr)
		}
		if t.c != nil {
			if cerr := t.c.Close(); t.err == nil && cerr != nil {
				t.err = fmt.Errorf("evtrace: %w", cerr)
			}
			t.c = nil
		}
	}
	return t.err
}
