package evtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Cluster trace merge: fold N per-node trace files (one per cluster
// machine, produced by cluster.EnableTracing) into a single
// Perfetto-loadable chrome-trace file.
//
// Three concerns meet here:
//
//   - pid namespacing: node k's app j becomes pid k*PidStride+j, with
//     process_name/process_sort_index metadata so Perfetto groups each
//     node's apps into one contiguous block;
//   - clock reconciliation: each node advances evaluation rounds at its
//     own pace (failed rounds simulate nothing), so node-local clocks
//     skew apart. Nodes emit a "round" instant at every round start;
//     the merge aligns those shared round boundaries — cluster time for
//     round r is the latest node-local time any node reached it — and
//     reports the largest residual skew it had to absorb;
//   - cluster attribution: the merged file ends with one cluster-level
//     N_total×(N_total+1) attribution instant whose per-node diagonal
//     blocks are the nodes' own summarized matrices, copied bit-exactly
//     (off-diagonal blocks are zero: nodes share no hardware).
//
// Per-node attribution instants are re-emitted under the name
// "node-attribution" so a plain `tracesum` summary of the merged file
// reads the cluster-level matrix instead of accidentally summing
// unrelated nodes' matrices into one.

// PidStride is the merged-trace pid namespace: node k's app j is pid
// k*PidStride + j. One thousand pids per node leaves room for any
// realistic per-machine core count while keeping pids readable.
const PidStride = 1000

// RawEvent is one chrome-trace event kept re-marshalable: Args pass
// through as raw JSON so merged attribution payloads stay bit-identical
// to their node-file originals.
type RawEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Cat  string          `json:"cat,omitempty"`
	Ts   *float64        `json:"ts,omitempty"`
	Dur  *float64        `json:"dur,omitempty"`
	Pid  *int            `json:"pid,omitempty"`
	Tid  *int            `json:"tid,omitempty"`
	S    string          `json:"s,omitempty"`
	Args json.RawMessage `json:"args,omitempty"`
}

// rawTraceDoc is the chrome-trace envelope for loading and re-emitting.
type rawTraceDoc struct {
	DisplayTimeUnit string         `json:"displayTimeUnit,omitempty"`
	OtherData       map[string]any `json:"otherData,omitempty"`
	TraceEvents     []RawEvent     `json:"traceEvents"`
}

// RoundMark is one node's record of reaching an evaluation round:
// Cycle is the node-local clock (exact, in cycles) at the round start.
type RoundMark struct {
	Round int
	Cycle uint64
}

// MigrationMark is one migration instant read back from a node trace.
type MigrationMark struct {
	Round   int    `json:"round"`
	Job     string `json:"job"`
	From    int    `json:"from"`
	To      int    `json:"to"`
	Swapped string `json:"swapped"`
}

// NodeTrace is one node's parsed trace file.
type NodeTrace struct {
	Node   int
	Path   string
	Events []RawEvent
	// Quanta is the node's per-quantum attribution series, in emission
	// order (round after round on the node-local clock).
	Quanta []QuantumAttribution
	// Rounds are the node's round-boundary instants, in round order.
	Rounds []RoundMark
	// Migrations are the migration instants recorded in this node's
	// trace (the node was the From or To side of each).
	Migrations []MigrationMark
	// Names are the node's app slot names from its first attribution
	// quantum (slot composition may change later; the slot count not).
	Names []string
}

// LoadNodeTrace parses one node's trace file, extracting the raw event
// stream plus the attribution series, round marks and migration marks
// the merge consumes.
func LoadNodeTrace(path string, node int) (*NodeTrace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("evtrace: %w", err)
	}
	var doc rawTraceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("evtrace: %s: not valid chrome-trace JSON: %w", path, err)
	}
	nt := &NodeTrace{Node: node, Path: path, Events: doc.TraceEvents}
	for _, e := range doc.TraceEvents {
		switch {
		case e.Name == "attribution" && e.Ph == "i" && e.Args != nil:
			var args struct {
				Attribution QuantumAttribution `json:"attribution"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil {
				return nil, fmt.Errorf("evtrace: %s: bad attribution event: %w", path, err)
			}
			nt.Quanta = append(nt.Quanta, args.Attribution)
		case e.Name == "round" && e.Ph == "i" && e.Args != nil:
			var args struct {
				Round int    `json:"round"`
				Cycle uint64 `json:"cycle"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil {
				return nil, fmt.Errorf("evtrace: %s: bad round event: %w", path, err)
			}
			nt.Rounds = append(nt.Rounds, RoundMark{Round: args.Round, Cycle: args.Cycle})
		case e.Name == "migration" && e.Ph == "i" && e.Args != nil:
			var mm MigrationMark
			if err := json.Unmarshal(e.Args, &mm); err != nil {
				return nil, fmt.Errorf("evtrace: %s: bad migration event: %w", path, err)
			}
			nt.Migrations = append(nt.Migrations, mm)
		}
	}
	if len(nt.Quanta) > 0 {
		nt.Names = nt.Quanta[0].Apps
	}
	sort.SliceStable(nt.Rounds, func(i, j int) bool { return nt.Rounds[i].Round < nt.Rounds[j].Round })
	return nt, nil
}

// ClusterRound is one reconciled round boundary: Cycle is the cluster
// clock assigned to it (the latest node-local clock of any node that
// reached the round) and Skew the spread it absorbed (that maximum
// minus the slowest participant's local clock).
type ClusterRound struct {
	Round int    `json:"round"`
	Cycle uint64 `json:"cycle"`
	Skew  uint64 `json:"skew"`
}

// Merged is the folded cluster view of N node traces.
type Merged struct {
	Nodes []*NodeTrace
	// Offsets[k] is node k's first row/column in the cluster matrix;
	// NApps is the cluster-wide app (row) count.
	Offsets []int
	NApps   int
	// Apps are cluster-qualified app names ("n0/mcf"), concatenated in
	// node order.
	Apps []string
	// NodeSummaries[k] is node k's standalone attribution summary — the
	// oracle the cluster matrix blocks are copied from.
	NodeSummaries []Summary
	// Mem and Cache are the cluster matrices, victim-major with the
	// system pseudo-cause in the last column; node k's diagonal block is
	// bit-identical to NodeSummaries[k]'s matrix.
	Mem          [][]float64
	MemRowTotals []float64
	Cache        [][]float64
	AppStats     []AppQuantumStats
	// Rounds is the reconciled cluster round timeline; MaxSkewCycles is
	// the largest per-round skew absorbed anywhere.
	Rounds        []ClusterRound
	MaxSkewCycles uint64

	// shifts[k] maps node k's round marks to timestamp shifts (cycles),
	// parallel to Nodes[k].Rounds.
	shifts [][]uint64
}

// Merge folds node traces into one cluster view. Nodes keep their given
// order (index = node id in pid namespacing).
func Merge(nodes []*NodeTrace) (*Merged, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("evtrace: merge needs at least one node trace")
	}
	m := &Merged{Nodes: nodes}

	// Reconcile clocks on shared round boundaries.
	rounds := map[int][]uint64{} // round -> participating local cycles
	for _, nt := range nodes {
		for _, rm := range nt.Rounds {
			rounds[rm.Round] = append(rounds[rm.Round], rm.Cycle)
		}
	}
	clusterCycle := map[int]uint64{}
	var order []int
	for r, cycles := range rounds {
		order = append(order, r)
		lo, hi := cycles[0], cycles[0]
		for _, c := range cycles[1:] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		clusterCycle[r] = hi
		if skew := hi - lo; skew > m.MaxSkewCycles {
			m.MaxSkewCycles = skew
		}
		m.Rounds = append(m.Rounds, ClusterRound{Round: r, Cycle: hi, Skew: hi - lo})
	}
	sort.Ints(order)
	sort.Slice(m.Rounds, func(i, j int) bool { return m.Rounds[i].Round < m.Rounds[j].Round })
	m.shifts = make([][]uint64, len(nodes))
	for k, nt := range nodes {
		m.shifts[k] = make([]uint64, len(nt.Rounds))
		for i, rm := range nt.Rounds {
			m.shifts[k][i] = clusterCycle[rm.Round] - rm.Cycle
		}
	}

	// Assemble the cluster matrix from per-node summaries.
	m.Offsets = make([]int, len(nodes))
	for k, nt := range nodes {
		m.Offsets[k] = m.NApps
		m.NodeSummaries = append(m.NodeSummaries, Summarize(nt.Quanta))
		m.NApps += len(nt.Names)
		for _, name := range nt.Names {
			m.Apps = append(m.Apps, fmt.Sprintf("n%d/%s", k, name))
		}
	}
	m.Mem = make([][]float64, m.NApps)
	m.Cache = make([][]float64, m.NApps)
	m.MemRowTotals = make([]float64, m.NApps)
	for j := range m.Mem {
		m.Mem[j] = make([]float64, m.NApps+1)
		m.Cache[j] = make([]float64, m.NApps+1)
	}
	for k := range nodes {
		off, sum := m.Offsets[k], m.NodeSummaries[k]
		nk := len(nodes[k].Names)
		for j := 0; j < nk; j++ {
			row := off + j
			if j < len(sum.MemRowTotals) {
				m.MemRowTotals[row] = sum.MemRowTotals[j]
			}
			copyBlockRow(m.Mem[row], sum.Mem, j, off, nk, m.NApps)
			copyBlockRow(m.Cache[row], sum.Cache, j, off, nk, m.NApps)
			if j < len(sum.AppStats) {
				st := sum.AppStats[j]
				st.Name = m.Apps[row]
				m.AppStats = append(m.AppStats, st)
			} else {
				m.AppStats = append(m.AppStats, AppQuantumStats{Name: m.Apps[row]})
			}
		}
	}
	return m, nil
}

// copyBlockRow copies one node-summary matrix row into a cluster row:
// cause columns land at the node's offset, the system pseudo-cause
// (node column nk) lands in the cluster's last column. Values are
// copied, not recomputed, so the block is bit-identical to the source.
func copyBlockRow(dst []float64, src [][]float64, j, off, nk, total int) {
	if j >= len(src) {
		return
	}
	for i, v := range src[j] {
		switch {
		case i < nk:
			dst[off+i] = v
		case i == nk:
			dst[total] = v
		}
	}
}

// shiftUs returns node k's timestamp shift (in trace µs) for an event
// at local timestamp ts: the shift of the latest round boundary at or
// before ts. Events before the first round mark keep their clock.
func (m *Merged) shiftUs(k int, ts float64) float64 {
	nt := m.Nodes[k]
	shift := uint64(0)
	for i, rm := range nt.Rounds {
		if float64(rm.Cycle)/1000.0 > ts {
			break
		}
		shift = m.shifts[k][i]
	}
	return float64(shift) / 1000.0
}

// ClusterAttribution builds the cluster-level attribution snapshot the
// merged file carries as its single "attribution" instant: the block
// matrix plus concatenated row totals and app stats. Cycles is the
// longest per-node traced window (each node's apps ran for that node's
// cycles, not the sum over nodes).
func (m *Merged) ClusterAttribution() QuantumAttribution {
	var cycles, end uint64
	for k, sum := range m.NodeSummaries {
		if sum.Cycles > cycles {
			cycles = sum.Cycles
		}
		for i, rm := range m.Nodes[k].Rounds {
			if c := rm.Cycle + m.shifts[k][i]; c > end {
				end = c
			}
		}
	}
	if end < cycles {
		end = cycles
	}
	return QuantumAttribution{
		Quantum:      0,
		EndCycle:     end,
		Cycles:       cycles,
		Apps:         m.Apps,
		Mem:          m.Mem,
		MemRowTotals: m.MemRowTotals,
		Cache:        m.Cache,
		AppStats:     m.AppStats,
	}
}

// WriteTo streams the merged chrome-trace file: header metadata, one
// process group per (node, app), every node event pid-namespaced and
// clock-shifted, and the final cluster attribution instant.
func (m *Merged) WriteTrace(w io.Writer) error {
	doc := rawTraceDoc{
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"tool":            "asmsim tracesum merge",
			"cycles_per_us":   1000,
			"nodes":           len(m.Nodes),
			"pid_stride":      PidStride,
			"max_skew_cycles": m.MaxSkewCycles,
			"rounds":          m.Rounds,
		},
	}
	intp := func(v int) *int { return &v }
	f64p := func(v float64) *float64 { return &v }
	mustArgs := func(v any) json.RawMessage {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err) // static shapes; cannot fail
		}
		return b
	}
	var maxTs float64
	for k, nt := range m.Nodes {
		for j, name := range nt.Names {
			pid := k*PidStride + j
			doc.TraceEvents = append(doc.TraceEvents,
				RawEvent{Name: "process_name", Ph: "M", Pid: intp(pid),
					Args: mustArgs(map[string]any{"name": fmt.Sprintf("node%d/app%d %s", k, j, name)})},
				RawEvent{Name: "process_sort_index", Ph: "M", Pid: intp(pid),
					Args: mustArgs(map[string]any{"sort_index": pid})},
			)
		}
		for _, e := range nt.Events {
			if e.Ph == "M" {
				continue // node-local process metadata replaced above
			}
			out := e
			if e.Name == "attribution" {
				// Keep the per-node series loadable, but under a name the
				// plain summarizer ignores — the merged file's canonical
				// "attribution" event is the cluster-level one below.
				out.Name = "node-attribution"
			}
			if e.Pid != nil {
				out.Pid = intp(k*PidStride + *e.Pid)
			}
			if e.Ts != nil {
				ts := *e.Ts + m.shiftUs(k, *e.Ts)
				out.Ts = f64p(ts)
				if ts > maxTs {
					maxTs = ts
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, out)
		}
	}
	qa := m.ClusterAttribution()
	ts := float64(qa.EndCycle) / 1000.0
	if ts < maxTs {
		ts = maxTs
	}
	doc.TraceEvents = append(doc.TraceEvents, RawEvent{
		Name: "attribution", Ph: "i", S: "g", Cat: "attribution",
		Ts: f64p(ts), Pid: intp(0), Tid: intp(0),
		Args: mustArgs(map[string]any{"attribution": qa}),
	})
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// MergeFiles is the one-call form: load every path as a node trace (in
// order: path index = node id), merge, and write the merged trace to w.
func MergeFiles(w io.Writer, paths []string) (*Merged, error) {
	nodes := make([]*NodeTrace, len(paths))
	for i, p := range paths {
		nt, err := LoadNodeTrace(p, i)
		if err != nil {
			return nil, err
		}
		nodes[i] = nt
	}
	m, err := Merge(nodes)
	if err != nil {
		return nil, err
	}
	if err := m.WriteTrace(w); err != nil {
		return nil, fmt.Errorf("evtrace: write merged trace: %w", err)
	}
	return m, nil
}
