package evtrace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// sampleQuantum builds a small two-app attribution snapshot.
func sampleQuantum(q int) QuantumAttribution {
	return QuantumAttribution{
		Quantum:  q,
		EndCycle: uint64(q+1) * 1000,
		Cycles:   1000,
		Apps:     []string{"a", "b"},
		Mem: [][]float64{
			{0, 80, 20},
			{40, 0, 0},
		},
		MemRowTotals: []float64{100, 40},
		Cache: [][]float64{
			{0, 10, 0},
			{5, 0, 0},
		},
		AppStats: []AppQuantumStats{
			{Name: "a", Retired: 500, MemStallCycles: 400, MemInterf: 100, CacheInterf: 10},
			{Name: "b", Retired: 800, MemStallCycles: 200, MemInterf: 40, CacheInterf: 5},
		},
	}
}

func TestTracerWritesValidChromeTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Config{SampleEvery: 1})
	tr.BeginRun([]string{"mcf", "bzip2"})
	tr.MissSpan(MissSpan{
		App: 0, Line: 0x40, Detect: 100, Enqueue: 110, Start: 250,
		Complete: 400, Done: 420, Channel: 0, Bank: 3, RowHit: true,
		InterfCycles: 140, Causes: []uint64{0, 140, 0}, CacheCause: 1,
	})
	tr.Quantum(sampleQuantum(0))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Pid  int             `json:"pid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		counts[e.Name+"/"+e.Ph]++
		if e.Ts < 0 || e.Dur < 0 {
			t.Fatalf("negative timing in %s: ts=%v dur=%v", e.Name, e.Ts, e.Dur)
		}
	}
	for _, want := range []string{"process_name/M", "miss/X", "mc-queue/X", "bank-service/X", "attribution/i", "interference/C"} {
		if counts[want] == 0 {
			t.Errorf("missing event %s (have %v)", want, counts)
		}
	}
	// The attribution event round-trips through JSON.
	var got []QuantumAttribution
	for _, e := range doc.TraceEvents {
		if e.Name != "attribution" {
			continue
		}
		var args struct {
			Attribution QuantumAttribution `json:"attribution"`
		}
		if err := json.Unmarshal(e.Args, &args); err != nil {
			t.Fatal(err)
		}
		got = append(got, args.Attribution)
	}
	if len(got) != 1 || got[0].MemRowTotals[0] != 100 || got[0].Apps[1] != "b" {
		t.Fatalf("attribution did not round-trip: %+v", got)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := New(&bytes.Buffer{}, Config{SampleEvery: 3})
	hits := 0
	for i := 0; i < 9; i++ {
		if tr.SampleMiss() {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("1-in-3 sampling over 9 misses: %d hits", hits)
	}
	if got := tr.SampleEvery(); got != 3 {
		t.Fatalf("SampleEvery = %d", got)
	}
}

func TestNilTracerIsNoOpAndAllocFree(t *testing.T) {
	var tr *Tracer
	sp := MissSpan{App: 1, InterfCycles: 7}
	q := sampleQuantum(0)
	allocs := testing.AllocsPerRun(100, func() {
		tr.BeginRun(nil)
		if tr.SampleMiss() {
			t.Fatal("nil tracer sampled a miss")
		}
		tr.MissSpan(sp)
		tr.Quantum(q)
		if tr.Quanta() != nil {
			t.Fatal("nil tracer retained quanta")
		}
		if tr.Err() != nil || tr.Close() != nil {
			t.Fatal("nil tracer reported an error")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %v times per run", allocs)
	}
}

func TestTracerCloseIdempotentAndSticky(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Config{})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatal("second Close wrote more data")
	}
	tr.MissSpan(MissSpan{}) // after close: dropped, no panic
}

func TestScaleRowsBitExactRowSums(t *testing.T) {
	cases := []struct {
		raw    [][]uint64
		totals []float64
	}{
		{[][]uint64{{0, 80, 20}, {40, 0, 1}}, []float64{123.456, 7.25}},
		{[][]uint64{{1, 1 << 40, 7}}, []float64{1e9 + 0.1}},
		{[][]uint64{{3, 0, 0}}, []float64{0.1}},
		{[][]uint64{{0, 0, 0}}, []float64{5}}, // empty row stays zero
		{[][]uint64{{9, 9, 9, 1}}, []float64{1.0 / 3.0}},
		{[][]uint64{{1, 1}}, []float64{math.Pi}},
	}
	for ci, c := range cases {
		scaled := ScaleRows(c.raw, c.totals)
		for j, row := range scaled {
			var rawSum uint64
			for _, v := range c.raw[j] {
				rawSum += v
			}
			want := c.totals[j]
			if rawSum == 0 {
				want = 0
			}
			if got := RowSum(row); got != want {
				t.Errorf("case %d row %d: RowSum = %v, want bit-exact %v (diff %g)",
					ci, j, got, want, got-want)
			}
			for i, v := range row {
				if c.raw[j][i] == 0 && v != 0 {
					t.Errorf("case %d row %d col %d: zero raw scaled to %v", ci, j, i, v)
				}
				if v < 0 {
					t.Errorf("case %d row %d col %d: negative %v", ci, j, i, v)
				}
			}
		}
	}
}

func TestSummarizeAndCPIStacks(t *testing.T) {
	sum := Summarize([]QuantumAttribution{sampleQuantum(0), sampleQuantum(1)})
	if sum.Quanta != 2 || sum.Cycles != 2000 {
		t.Fatalf("quanta %d cycles %d", sum.Quanta, sum.Cycles)
	}
	if sum.Mem[0][1] != 160 || sum.MemRowTotals[0] != 200 {
		t.Fatalf("mem aggregate wrong: %+v totals %v", sum.Mem, sum.MemRowTotals)
	}
	if sum.Cache[1][0] != 10 {
		t.Fatalf("cache aggregate wrong: %+v", sum.Cache)
	}
	if sum.AppStats[0].Retired != 1000 || sum.AppStats[1].MemInterf != 80 {
		t.Fatalf("app stats wrong: %+v", sum.AppStats)
	}

	stacks := sum.CPIStacks()
	if len(stacks) != 2 {
		t.Fatalf("%d stacks", len(stacks))
	}
	for _, cs := range stacks {
		total := cs.Compute + cs.MemAlone + cs.CacheInterf + cs.MemInterf
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("%s: fractions sum to %v", cs.Name, total)
		}
		if cs.CPI <= 0 {
			t.Errorf("%s: CPI %v", cs.Name, cs.CPI)
		}
	}
	// App a: 800 stall cycles of 2000, 200 mem interference, 20 cache.
	a := stacks[0]
	if a.Compute != (2000.0-800)/2000 || a.MemInterf != 200.0/2000 || a.CacheInterf != 20.0/2000 {
		t.Fatalf("stack a: %+v", a)
	}

	if s := Summarize(nil); s.Quanta != 0 || s.Apps != nil {
		t.Fatalf("empty summarize: %+v", s)
	}
}

func TestCPIStacksClampIntoStallBudget(t *testing.T) {
	// Attributed interference can exceed measured stall time (raw
	// occupancy overlaps); the stack must clamp, not go negative.
	q := sampleQuantum(0)
	q.AppStats[0].MemStallCycles = 50
	q.AppStats[0].MemInterf = 100
	q.AppStats[0].CacheInterf = 100
	cs := Summarize([]QuantumAttribution{q}).CPIStacks()[0]
	if cs.MemAlone < 0 || cs.CacheInterf < 0 {
		t.Fatalf("negative component: %+v", cs)
	}
	if cs.MemInterf != 50.0/1000 || cs.CacheInterf != 0 {
		t.Fatalf("clamp wrong: %+v", cs)
	}
}

func TestAddMatrixGrows(t *testing.T) {
	dst := AddMatrix(nil, [][]float64{{1, 2}, {3}})
	dst = AddMatrix(dst, [][]float64{{1}, {0, 5}, {7}})
	want := [][]float64{{2, 2}, {3, 5}, {7}}
	for j := range want {
		for i := range want[j] {
			if dst[j][i] != want[j][i] {
				t.Fatalf("dst[%d][%d] = %v, want %v", j, i, dst[j][i], want[j][i])
			}
		}
	}
}
