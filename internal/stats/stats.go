// Package stats provides the small statistical building blocks used across
// the simulator: running means and standard deviations, fixed-bucket
// histograms for latency and error distributions, and simple aggregation
// helpers for experiment tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a running mean and variance using Welford's method.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, or 0 with no observations.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.mean
}

// Std returns the population standard deviation, or 0 with fewer than two
// observations.
func (r *Running) Std() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}

// Merge combines another accumulator into r.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	mean := r.mean + d*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.n, r.mean, r.m2 = n, mean, m2
}

// Histogram is a fixed-width-bucket histogram over [Min, Min+Width*len(buckets)).
// Samples outside the range are clamped into the first or last bucket, and
// counted in Under/Over so clamping is visible.
type Histogram struct {
	Min     float64
	Width   float64
	Counts  []uint64
	Under   uint64
	Over    uint64
	samples uint64
	sum     float64
}

// NewHistogram returns a histogram with n buckets of the given width
// starting at min. It panics on a non-positive width or bucket count.
func NewHistogram(min, width float64, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic("stats: histogram needs positive width and bucket count")
	}
	return &Histogram{Min: min, Width: width, Counts: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.samples++
	h.sum += x
	i := int(math.Floor((x - h.Min) / h.Width))
	switch {
	case i < 0:
		h.Under++
		i = 0
	case i >= len(h.Counts):
		h.Over++
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// N returns the total number of samples.
func (h *Histogram) N() uint64 { return h.samples }

// Mean returns the mean of all samples (including clamped ones, at their
// true values).
func (h *Histogram) Mean() float64 {
	if h.samples == 0 {
		return 0
	}
	return h.sum / float64(h.samples)
}

// Fractions returns the fraction of samples in each bucket.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.samples == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.samples)
	}
	return out
}

// BucketLabel renders a human-readable range label for bucket i.
func (h *Histogram) BucketLabel(i int) string {
	lo := h.Min + float64(i)*h.Width
	return fmt.Sprintf("[%g,%g)", lo, lo+h.Width)
}

// Quantile returns the approximate q-quantile (0 <= q <= 1) using bucket
// midpoints.
func (h *Histogram) Quantile(q float64) float64 {
	if h.samples == 0 {
		return 0
	}
	target := q * float64(h.samples)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= target {
			return h.Min + (float64(i)+0.5)*h.Width
		}
	}
	return h.Min + (float64(len(h.Counts))-0.5)*h.Width
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when the slices differ in length, are shorter than 2, or
// either has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// TotalVariation returns the total variation distance between two
// discrete distributions given as fraction slices (0.5 * L1 distance).
// Slices of different lengths compare up to the shorter length with the
// remainder counted fully.
func TotalVariation(p, q []float64) float64 {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	d := 0.0
	for i := 0; i < n; i++ {
		d += math.Abs(p[i] - q[i])
	}
	for i := n; i < len(p); i++ {
		d += p[i]
	}
	for i := n; i < len(q); i++ {
		d += q[i]
	}
	return d / 2
}

// HarmonicMean returns the harmonic mean of xs, ignoring non-positive
// entries; it returns 0 when no positive entries exist.
func HarmonicMean(xs []float64) float64 {
	s := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += 1 / x
			n++
		}
	}
	if n == 0 || s == 0 {
		return 0
	}
	return float64(n) / s
}
