package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestRunningMatchesDirect(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if !almostEqual(r.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("mean %v vs %v", r.Mean(), Mean(xs))
	}
	if !almostEqual(r.Std(), Std(xs), 1e-9) {
		t.Fatalf("std %v vs %v", r.Std(), Std(xs))
	}
	if r.N() != len(xs) {
		t.Fatalf("n %d", r.N())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Std() != 0 || r.N() != 0 {
		t.Fatal("empty Running should be all zeros")
	}
}

func TestRunningMergeEquivalence(t *testing.T) {
	err := quick.Check(func(a, b []float64) bool {
		var whole, left, right Running
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // avoid float overflow artifacts, not the point here
			}
		}
		for _, x := range a {
			whole.Add(x)
			left.Add(x)
		}
		for _, x := range b {
			whole.Add(x)
			right.Add(x)
		}
		left.Merge(right)
		scale := math.Abs(whole.Mean()) + 1
		return almostEqual(left.Mean(), whole.Mean(), 1e-6*scale) &&
			almostEqual(left.Std(), whole.Std(), 1e-4*(whole.Std()+1))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 5, 9.99, 10, 49.9, 25} {
		h.Add(x)
	}
	want := []uint64{3, 1, 1, 0, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 3)
	h.Add(-5)
	h.Add(1000)
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 1 || h.Counts[2] != 1 {
		t.Fatal("clamped samples must land in edge buckets")
	}
	if h.N() != 2 {
		t.Fatalf("n=%d", h.N())
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		h := NewHistogram(-100, 7, 30)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			h.Add(x)
		}
		if len(xs) == 0 {
			return true
		}
		sum := 0.0
		for _, f := range h.Fractions() {
			sum += f
		}
		return almostEqual(sum, 1, 1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(2)
	h.Add(4)
	if !almostEqual(h.Mean(), 3, 1e-9) {
		t.Fatalf("mean %v", h.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	med := h.Quantile(0.5)
	if med < 40 || med > 60 {
		t.Fatalf("median %v", med)
	}
	if h.Quantile(1.0) < 90 {
		t.Fatalf("p100 %v", h.Quantile(1.0))
	}
}

func TestHistogramPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero width")
		}
	}()
	NewHistogram(0, 0, 5)
}

func TestBasicAggregates(t *testing.T) {
	xs := []float64{2, 4, 8}
	if Mean(xs) != 14.0/3 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Max(xs) != 8 || Min(xs) != 2 {
		t.Fatal("max/min")
	}
	if Median(xs) != 4 {
		t.Fatalf("median %v", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
	hm := HarmonicMean(xs)
	if !almostEqual(hm, 3/(0.5+0.25+0.125), 1e-9) {
		t.Fatalf("harmonic %v", hm)
	}
}

func TestAggregatesEmpty(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || Median(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 || HarmonicMean(nil) != 0 {
		t.Fatal("empty-slice aggregates should be 0")
	}
}

func TestHarmonicMeanIgnoresNonPositive(t *testing.T) {
	if HarmonicMean([]float64{-1, 0, 2}) != 2 {
		t.Fatalf("got %v", HarmonicMean([]float64{-1, 0, 2}))
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	if !almostEqual(Pearson(xs, ys), 1, 1e-9) {
		t.Fatalf("got %v", Pearson(xs, ys))
	}
	neg := []float64{40, 30, 20, 10}
	if !almostEqual(Pearson(xs, neg), -1, 1e-9) {
		t.Fatalf("got %v", Pearson(xs, neg))
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Fatal("short slices")
	}
	if Pearson([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Fatal("zero variance")
	}
	if Pearson([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("length mismatch")
	}
}

func TestPearsonRange(t *testing.T) {
	err := quick.Check(func(xs, ys []float64) bool {
		for _, x := range append(append([]float64{}, xs...), ys...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		r := Pearson(xs, ys)
		return r >= -1.0000001 && r <= 1.0000001
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTotalVariation(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{1, 0}
	if !almostEqual(TotalVariation(p, q), 0.5, 1e-9) {
		t.Fatalf("got %v", TotalVariation(p, q))
	}
	if TotalVariation(p, p) != 0 {
		t.Fatal("identical distributions must have distance 0")
	}
}

func TestTotalVariationSymmetric(t *testing.T) {
	err := quick.Check(func(p, q []float64) bool {
		for _, x := range append(append([]float64{}, p...), q...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		return almostEqual(TotalVariation(p, q), TotalVariation(q, p), 1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
