package cache

import "testing"

func TestMSHRAllocateAndComplete(t *testing.T) {
	m := NewMSHR(2)
	if !m.Allocate(0x10, 1, false) {
		t.Fatal("allocate failed on empty file")
	}
	if m.Lookup(0x10) == nil {
		t.Fatal("entry not found")
	}
	e := m.Complete(0x10)
	if e == nil || len(e.Waiters) != 1 || e.Waiters[0] != 1 {
		t.Fatalf("bad completion %+v", e)
	}
	if m.Lookup(0x10) != nil {
		t.Fatal("entry not removed")
	}
}

func TestMSHRMerge(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(0x10, 1, false)
	if !m.Merge(0x10, 2, true) {
		t.Fatal("merge failed")
	}
	if m.Merge(0x99, 3, false) {
		t.Fatal("merge to absent line must fail")
	}
	e := m.Complete(0x10)
	if len(e.Waiters) != 2 || !e.Dirty {
		t.Fatalf("merge lost state: %+v", e)
	}
}

func TestMSHRCapacity(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(1, 0, false)
	m.Allocate(2, 0, false)
	if !m.Full() {
		t.Fatal("file should be full")
	}
	if m.Allocate(3, 0, false) {
		t.Fatal("allocate beyond capacity must fail")
	}
	m.Complete(1)
	if m.Full() || m.Outstanding() != 1 {
		t.Fatal("completion must free a slot")
	}
}

func TestMSHRDuplicateAllocate(t *testing.T) {
	m := NewMSHR(4)
	m.Allocate(1, 0, false)
	if m.Allocate(1, 1, false) {
		t.Fatal("second allocate for same line must fail (use Merge)")
	}
}

func TestMSHRCompleteAbsent(t *testing.T) {
	m := NewMSHR(4)
	if m.Complete(123) != nil {
		t.Fatal("completing absent line must return nil")
	}
}

func TestMSHRReset(t *testing.T) {
	m := NewMSHR(4)
	m.Allocate(1, 0, false)
	m.Reset()
	if m.Outstanding() != 0 || m.Lookup(1) != nil {
		t.Fatal("reset failed")
	}
}

func TestMSHRPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity must panic")
		}
	}()
	NewMSHR(0)
}
