package cache

// AuxTagStore models the expected state of the shared cache had one
// application been running alone on the system (Pomerene et al.; Qureshi &
// Patt). It is a per-application LRU tag directory with the same geometry
// as the shared cache, optionally set-sampled to cut hardware cost
// (Section 4.4 of the paper).
//
// Every probe that maps to a sampled set records the LRU stack position of
// the hit (0 = MRU). Hits at position p would be hits in any cache with at
// least p+1 ways, so the position profile simultaneously provides:
//   - ASM / PTCA contention-miss identification (hit in ATS, miss in cache);
//   - UCP's marginal-utility curves;
//   - ASM-Cache's quantum-hits_n for every candidate allocation n.
//
// Storage is flat (one slab per field, indexed set*ways+way) — the ATS is
// probed on every demand access of every app, so locality matters.
type AuxTagStore struct {
	tags    []uint64
	valid   []bool
	lru     []uint8 // per-set stack: lru[set*ways+pos] = way at stack pos
	numSets uint64
	ways    int
	stride  uint64 // probe sets where setIdx % stride == 0; 1 = full ATS

	probes  uint64   // accesses mapping to sampled sets
	hits    uint64   // hits in sampled sets
	posHits []uint64 // hits by LRU stack position, sampled sets only
}

// NewAuxTagStore returns an ATS mirroring a cache with numSets sets and
// the given associativity. sampledSets selects how many sets are modeled;
// pass numSets (or 0) for a full ATS, or e.g. 64 for the paper's sampled
// configuration. numSets must be a power of two and divisible by
// sampledSets.
func NewAuxTagStore(numSets, ways, sampledSets int) *AuxTagStore {
	if sampledSets <= 0 || sampledSets > numSets {
		sampledSets = numSets
	}
	if numSets%sampledSets != 0 {
		panic("cache: sampledSets must divide numSets")
	}
	a := &AuxTagStore{
		tags:    make([]uint64, sampledSets*ways),
		valid:   make([]bool, sampledSets*ways),
		lru:     make([]uint8, sampledSets*ways),
		numSets: uint64(numSets),
		ways:    ways,
		stride:  uint64(numSets / sampledSets),
		posHits: make([]uint64, ways),
	}
	for s := 0; s < sampledSets; s++ {
		for w := 0; w < ways; w++ {
			a.lru[s*ways+w] = uint8(w)
		}
	}
	return a
}

// Sampled reports whether the ATS is set-sampled (i.e., covers fewer sets
// than the cache it mirrors).
func (a *AuxTagStore) Sampled() bool { return a.stride > 1 }

// SampledSets returns the number of modeled sets.
func (a *AuxTagStore) SampledSets() int { return len(a.tags) / a.ways }

// Access probes and updates the ATS for one shared-cache access.
// It returns sampled=false when the address does not map to a modeled set
// (nothing is recorded). On sampled accesses it returns whether the access
// would have hit had the app run alone, and the LRU stack position of the
// hit (-1 on a miss).
func (a *AuxTagStore) Access(lineAddr uint64) (sampled, hit bool, stackPos int) {
	setIdx := lineAddr & (a.numSets - 1)
	if setIdx%a.stride != 0 {
		return false, false, -1
	}
	base := int(setIdx/a.stride) * a.ways
	tag := lineAddr / a.numSets
	a.probes++

	lru := a.lru[base : base+a.ways]
	for pos, w := range lru {
		i := base + int(w)
		if a.valid[i] && a.tags[i] == tag {
			a.hits++
			a.posHits[pos]++
			// Move to MRU.
			copy(lru[1:pos+1], lru[:pos])
			lru[0] = w
			return true, true, pos
		}
	}
	// Miss: install at MRU, evicting the LRU way.
	w := lru[a.ways-1]
	i := base + int(w)
	a.tags[i], a.valid[i] = tag, true
	copy(lru[1:], lru[:a.ways-1])
	lru[0] = w
	return true, false, -1
}

// Install inserts a line into the directory without recording a probe.
// The sim layer uses it for prefetch fills: a prefetcher trained on the
// app's own access stream would have fetched the same lines had the app
// run alone, so the alone-state directory must reflect them — otherwise
// every demand hit on a prefetched line is misclassified as a contention
// miss.
func (a *AuxTagStore) Install(lineAddr uint64) {
	setIdx := lineAddr & (a.numSets - 1)
	if setIdx%a.stride != 0 {
		return
	}
	base := int(setIdx/a.stride) * a.ways
	tag := lineAddr / a.numSets
	lru := a.lru[base : base+a.ways]
	for pos, w := range lru {
		i := base + int(w)
		if a.valid[i] && a.tags[i] == tag {
			copy(lru[1:pos+1], lru[:pos])
			lru[0] = w
			return
		}
	}
	w := lru[a.ways-1]
	i := base + int(w)
	a.tags[i], a.valid[i] = tag, true
	copy(lru[1:], lru[:a.ways-1])
	lru[0] = w
}

// HitFraction returns the fraction of sampled probes that hit, i.e. the
// ats-hit-fraction of Section 4.4. With zero probes it returns 0.
func (a *AuxTagStore) HitFraction() float64 {
	if a.probes == 0 {
		return 0
	}
	return float64(a.hits) / float64(a.probes)
}

// MissFraction returns 1 - HitFraction when probes exist, else 0.
func (a *AuxTagStore) MissFraction() float64 {
	if a.probes == 0 {
		return 0
	}
	return float64(a.probes-a.hits) / float64(a.probes)
}

// Probes returns the number of sampled probes since the last reset.
func (a *AuxTagStore) Probes() uint64 { return a.probes }

// Hits returns the number of sampled hits since the last reset.
func (a *AuxTagStore) Hits() uint64 { return a.hits }

// HitFractionAtWays returns the fraction of sampled probes that would have
// hit in a cache restricted to n ways (hits at stack positions < n). This
// is the way-utility curve used by UCP and ASM-Cache.
func (a *AuxTagStore) HitFractionAtWays(n int) float64 {
	if a.probes == 0 {
		return 0
	}
	if n > a.ways {
		n = a.ways
	}
	var h uint64
	for p := 0; p < n; p++ {
		h += a.posHits[p]
	}
	return float64(h) / float64(a.probes)
}

// PositionHits returns a copy of the per-stack-position hit counts.
func (a *AuxTagStore) PositionHits() []uint64 {
	return append([]uint64(nil), a.posHits...)
}

// ResetStats clears probe/hit counters but keeps the tag state (the
// directory must stay warm across quanta; only the statistics are
// per-quantum).
func (a *AuxTagStore) ResetStats() {
	a.probes, a.hits = 0, 0
	for i := range a.posHits {
		a.posHits[i] = 0
	}
}
