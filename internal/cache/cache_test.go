package cache

import (
	"testing"
	"testing/quick"

	"asmsim/internal/rng"
)

func TestLookupMissThenHit(t *testing.T) {
	c := New(16, 4, 2)
	if c.Lookup(0, 0x100, false) {
		t.Fatal("cold cache must miss")
	}
	c.Insert(0, 0x100, false)
	if !c.Lookup(0, 0x100, false) {
		t.Fatal("inserted line must hit")
	}
	if c.Hits(0) != 1 || c.Misses(0) != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(0), c.Misses(0))
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(1, 2, 1) // one set, two ways
	c.Insert(0, 0, false)
	c.Insert(0, 1, false)
	c.Lookup(0, 0, false) // 0 becomes MRU, 1 is LRU
	v := c.Insert(0, 2, false)
	if !v.Valid || v.LineAddr != 1 {
		t.Fatalf("expected LRU victim line 1, got %+v", v)
	}
	if !c.Peek(0) || c.Peek(1) || !c.Peek(2) {
		t.Fatal("wrong post-eviction contents")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := New(1, 2, 1)
	c.Insert(0, 0, false)
	c.Insert(0, 1, false)
	v := c.Insert(0, 0, true) // refresh, mark dirty, no eviction
	if v.Valid {
		t.Fatalf("re-insert must not evict, got %+v", v)
	}
	v = c.Insert(0, 2, false) // LRU is now line 1
	if v.LineAddr != 1 {
		t.Fatalf("victim %d, want 1", v.LineAddr)
	}
	if !v.Valid {
		t.Fatal("line 1 was valid")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := New(1, 1, 1)
	c.Insert(0, 7, true)
	v := c.Insert(0, 8, false)
	if !v.Valid || !v.Dirty || v.LineAddr != 7 {
		t.Fatalf("dirty victim not reported: %+v", v)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := New(1, 1, 1)
	c.Insert(0, 7, false)
	c.Lookup(0, 7, true) // write hit dirties the line
	v := c.Insert(0, 8, false)
	if !v.Dirty {
		t.Fatal("write hit must dirty the line")
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	c := New(1, 2, 1)
	c.Insert(0, 0, false)
	c.Insert(0, 1, false) // LRU: 0
	c.Peek(0)             // must NOT promote 0
	v := c.Insert(0, 2, false)
	if v.LineAddr != 0 {
		t.Fatalf("Peek changed LRU state: victim %d", v.LineAddr)
	}
}

func TestSetIndexing(t *testing.T) {
	c := New(16, 1, 1)
	// Lines 0 and 16 map to set 0; they must evict each other.
	c.Insert(0, 0, false)
	v := c.Insert(0, 16, false)
	if !v.Valid || v.LineAddr != 0 {
		t.Fatalf("conflict miss expected, got %+v", v)
	}
	// Line 1 maps to set 1 and must not conflict.
	if v := c.Insert(0, 1, false); v.Valid {
		t.Fatalf("no conflict expected, got %+v", v)
	}
}

func TestOccupancyTracking(t *testing.T) {
	c := New(4, 2, 2)
	c.Insert(0, 0, false)
	c.Insert(0, 1, false)
	c.Insert(1, 2, false)
	if c.Occupancy(0) != 2 || c.Occupancy(1) != 1 {
		t.Fatalf("occupancy %d/%d", c.Occupancy(0), c.Occupancy(1))
	}
}

func TestPartitionConvergesToQuota(t *testing.T) {
	c := New(8, 4, 2) // 32 lines total
	// Fill the cache with app 0.
	for line := uint64(0); line < 64; line++ {
		if !c.Lookup(0, line, false) {
			c.Insert(0, line, false)
		}
	}
	// Partition: app 0 gets 1 way, app 1 gets 3 ways; app 1 streams.
	c.SetPartition([]int{1, 3})
	for line := uint64(1000); line < 1200; line++ {
		if !c.Lookup(1, line, false) {
			c.Insert(1, line, false)
		}
	}
	// App 0 should have been whittled down to ~1 way per set (8 lines).
	if c.Occupancy(0) > 8 {
		t.Fatalf("app 0 occupies %d lines, quota allows 8", c.Occupancy(0))
	}
	if c.Occupancy(1) < 20 {
		t.Fatalf("app 1 occupies only %d lines", c.Occupancy(1))
	}
}

func TestPartitionOwnLRUWhenAtQuota(t *testing.T) {
	c := New(1, 4, 2)
	c.SetPartition([]int{2, 2})
	c.Insert(0, 0, false)
	c.Insert(0, 1, false)
	c.Insert(1, 2, false)
	c.Insert(1, 3, false)
	// App 0 at quota: inserting evicts its own LRU (line 0), not app 1's.
	v := c.Insert(0, 4, false)
	if v.App != 0 || v.LineAddr != 0 {
		t.Fatalf("expected app 0's own LRU line 0 evicted, got %+v", v)
	}
}

func TestPartitionValidation(t *testing.T) {
	c := New(8, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation must panic")
		}
	}()
	c.SetPartition([]int{3, 2})
}

func TestPartitionRemoval(t *testing.T) {
	c := New(8, 4, 2)
	c.SetPartition([]int{2, 2})
	c.SetPartition(nil)
	if c.Partition() != nil {
		t.Fatal("partition not removed")
	}
}

func TestResetStats(t *testing.T) {
	c := New(4, 2, 1)
	c.Lookup(0, 0, false)
	c.Insert(0, 0, false)
	c.ResetStats()
	if c.Hits(0) != 0 || c.Misses(0) != 0 {
		t.Fatal("stats not reset")
	}
	if c.Occupancy(0) != 1 {
		t.Fatal("occupancy must survive ResetStats")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count must panic")
		}
	}()
	New(12, 4, 1)
}

// TestCacheDeterministic checks that the tag array is a pure function of
// its access sequence.
func TestCacheDeterministic(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		run := func() ([]bool, uint64) {
			c := New(8, 2, 1)
			r := rng.New(seed)
			var hits []bool
			for i := 0; i < 200; i++ {
				line := r.Uint64n(64)
				h := c.Lookup(0, line, false)
				if !h {
					c.Insert(0, line, false)
				}
				hits = append(hits, h)
			}
			return hits, c.Hits(0)
		}
		h1, n1 := run()
		h2, n2 := run()
		if n1 != n2 {
			return false
		}
		for i := range h1 {
			if h1[i] != h2[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}
