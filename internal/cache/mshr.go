package cache

// MSHR is a miss-status holding register file: it tracks outstanding line
// fills and merges secondary misses to the same line into the primary
// miss, bounding each requester's memory-level parallelism by its entry
// count. Waiters are opaque tokens owned by the caller (the sim package
// uses instruction-window slot ids).
type MSHR struct {
	entries map[uint64]*MSHREntry
	cap     int
}

// MSHREntry is one outstanding miss.
type MSHREntry struct {
	LineAddr uint64
	Waiters  []uint64
	Dirty    bool // a merged write wants the line dirty on fill
}

// NewMSHR returns an MSHR file with the given number of entries.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		panic("cache: MSHR needs positive capacity")
	}
	return &MSHR{entries: make(map[uint64]*MSHREntry, capacity), cap: capacity}
}

// Full reports whether a new primary miss can NOT be allocated.
func (m *MSHR) Full() bool { return len(m.entries) >= m.cap }

// Outstanding returns the number of in-flight primary misses.
func (m *MSHR) Outstanding() int { return len(m.entries) }

// Lookup returns the entry for lineAddr, or nil.
func (m *MSHR) Lookup(lineAddr uint64) *MSHREntry {
	return m.entries[lineAddr]
}

// Allocate creates an entry for a primary miss. It returns false when the
// file is full or the line already has an entry (use Merge for that).
func (m *MSHR) Allocate(lineAddr uint64, waiter uint64, dirty bool) bool {
	if m.Full() {
		return false
	}
	if _, ok := m.entries[lineAddr]; ok {
		return false
	}
	m.entries[lineAddr] = &MSHREntry{
		LineAddr: lineAddr,
		Waiters:  []uint64{waiter},
		Dirty:    dirty,
	}
	return true
}

// Merge attaches a secondary miss to an existing entry. It returns false
// when no entry exists for the line.
func (m *MSHR) Merge(lineAddr uint64, waiter uint64, dirty bool) bool {
	e, ok := m.entries[lineAddr]
	if !ok {
		return false
	}
	e.Waiters = append(e.Waiters, waiter)
	e.Dirty = e.Dirty || dirty
	return true
}

// Complete removes and returns the entry for a filled line, or nil if the
// line had no entry.
func (m *MSHR) Complete(lineAddr uint64) *MSHREntry {
	e, ok := m.entries[lineAddr]
	if !ok {
		return nil
	}
	delete(m.entries, lineAddr)
	return e
}

// Reset drops all entries.
func (m *MSHR) Reset() {
	clear(m.entries)
}
