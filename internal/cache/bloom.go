package cache

// PollutionFilter is the Bloom-filter structure FST uses to identify
// contention misses: whenever another application evicts one of this
// application's shared-cache lines, the line address is added to the
// filter; a later cache miss that hits in the filter is classified as a
// contention miss (Ebrahimi et al., ASPLOS 2010).
//
// The filter is intentionally approximate — the paper's Section 6 studies
// how shrinking it (to match a sampled ATS budget) degrades FST's accuracy.
// Smaller filters raise the false-positive rate, which is exactly the
// effect the experiments need to reproduce.
type PollutionFilter struct {
	bits   []uint64
	nbits  uint64
	hashes int
	adds   uint64
}

// NewPollutionFilter returns a filter with the given number of bits
// (rounded up to a multiple of 64) and hash functions. bits must be
// positive; hashes is clamped to [1, 8].
func NewPollutionFilter(bits int, hashes int) *PollutionFilter {
	if bits <= 0 {
		panic("cache: pollution filter needs positive size")
	}
	if hashes < 1 {
		hashes = 1
	}
	if hashes > 8 {
		hashes = 8
	}
	words := (bits + 63) / 64
	return &PollutionFilter{
		bits:   make([]uint64, words),
		nbits:  uint64(words * 64),
		hashes: hashes,
	}
}

// Bits returns the filter capacity in bits.
func (f *PollutionFilter) Bits() int { return int(f.nbits) }

// hash derives the i-th bit index for addr using two mixing rounds
// (Kirsch-Mitzenmacher double hashing).
func (f *PollutionFilter) hash(addr uint64, i int) uint64 {
	h1 := addr * 0x9E3779B97F4A7C15
	h1 ^= h1 >> 32
	h2 := addr*0xC2B2AE3D27D4EB4F + 0x165667B19E3779F9
	h2 ^= h2 >> 29
	return (h1 + uint64(i)*h2) % f.nbits
}

// Add records an evicted line address.
func (f *PollutionFilter) Add(lineAddr uint64) {
	f.adds++
	for i := 0; i < f.hashes; i++ {
		b := f.hash(lineAddr, i)
		f.bits[b/64] |= 1 << (b % 64)
	}
}

// Test reports whether lineAddr may have been added (Bloom semantics:
// false positives possible, false negatives impossible since the last
// Clear).
func (f *PollutionFilter) Test(lineAddr uint64) bool {
	for i := 0; i < f.hashes; i++ {
		b := f.hash(lineAddr, i)
		if f.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// Remove is a best-effort clear of lineAddr's bits, used when the line is
// re-fetched (standard pollution-filter behaviour). Because bits are
// shared, this can also clear other addresses' bits — an approximation the
// original hardware design shares.
func (f *PollutionFilter) Remove(lineAddr uint64) {
	for i := 0; i < f.hashes; i++ {
		b := f.hash(lineAddr, i)
		f.bits[b/64] &^= 1 << (b % 64)
	}
}

// Clear empties the filter.
func (f *PollutionFilter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.adds = 0
}

// Adds returns the number of insertions since the last Clear.
func (f *PollutionFilter) Adds() uint64 { return f.adds }
