// Package cache implements the cache structures the paper's system is built
// from: a set-associative, true-LRU tag array with way-partition-aware
// victim selection (used for the private L1s and the shared L2), a
// per-application auxiliary tag store with LRU-stack-position hit profiles
// (used by ASM, PTCA, UCP and ASM-Cache), a Bloom-filter pollution filter
// (used by FST), and a simple MSHR file.
//
// The structures here are purely functional tag state; all timing lives in
// the sim package.
package cache

import "fmt"

// NoApp marks a line not owned by any application (invalid lines).
const NoApp = -1

// Line is one cache line's tag state.
type Line struct {
	Tag   uint64
	App   int16 // owning application (core) id
	Valid bool
	Dirty bool
}

// Victim describes the line displaced by an insertion.
type Victim struct {
	Valid    bool   // a valid line was evicted
	Dirty    bool   // ... and it was dirty (needs writeback)
	App      int16  // owner of the evicted line
	LineAddr uint64 // full line address of the evicted line
}

// Cache is a set-associative tag array with true LRU replacement and
// optional way partitioning among applications. Storage is flat (one slab
// for lines, one for the per-set LRU stacks) for locality: the shared L2
// tag array is probed on every private-cache miss.
type Cache struct {
	lines    []Line  // numSets*ways, indexed set*ways+way
	lru      []uint8 // per-set stacks: lru[set*ways+pos] = way at stack pos
	numSets  uint64
	ways     int
	alloc    []int // ways allocated per app; nil means unpartitioned
	hits     []uint64
	misses   []uint64
	occupied []uint64 // valid lines owned per app (whole cache)
}

// New returns a cache with the given geometry. Both arguments must be
// positive and numSets must be a power of two (so set indexing is a mask).
func New(numSets, ways, numApps int) *Cache {
	if numSets <= 0 || ways <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache: bad geometry sets=%d ways=%d", numSets, ways))
	}
	c := &Cache{
		lines:    make([]Line, numSets*ways),
		lru:      make([]uint8, numSets*ways),
		numSets:  uint64(numSets),
		ways:     ways,
		hits:     make([]uint64, numApps),
		misses:   make([]uint64, numApps),
		occupied: make([]uint64, numApps),
	}
	for i := range c.lines {
		c.lines[i].App = NoApp
		c.lru[i] = uint8(i % ways)
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.numSets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// index splits a line address into set index and tag.
func (c *Cache) index(lineAddr uint64) (uint64, uint64) {
	return lineAddr & (c.numSets - 1), lineAddr / c.numSets
}

// lineAddr reconstructs a line address from a set index and tag.
func (c *Cache) lineAddr(setIdx, tag uint64) uint64 {
	return tag*c.numSets + setIdx
}

// SetPartition installs a way allocation (one entry per app). The sum of
// allocations may be at most the associativity; remaining ways are
// effectively shared slack. Passing nil removes partitioning. The partition
// is enforced lazily by victim selection: over-quota apps lose lines as
// insertions occur, as in UCP.
func (c *Cache) SetPartition(alloc []int) {
	if alloc == nil {
		c.alloc = nil
		return
	}
	total := 0
	for _, a := range alloc {
		if a < 0 {
			panic("cache: negative way allocation")
		}
		total += a
	}
	if total > c.ways {
		panic(fmt.Sprintf("cache: allocation %d exceeds %d ways", total, c.ways))
	}
	c.alloc = append(c.alloc[:0], alloc...)
}

// Partition returns the current way allocation, or nil if unpartitioned.
func (c *Cache) Partition() []int { return c.alloc }

// Lookup probes the cache. On a hit the line is moved to MRU and, for
// writes, marked dirty. It returns whether the probe hit.
func (c *Cache) Lookup(app int, lineAddr uint64, isWrite bool) bool {
	setIdx, tag := c.index(lineAddr)
	base := int(setIdx) * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.Valid && ln.Tag == tag {
			if isWrite {
				ln.Dirty = true
			}
			c.touch(base, uint8(w))
			c.hits[app]++
			return true
		}
	}
	c.misses[app]++
	return false
}

// Peek reports whether lineAddr is present without updating LRU state or
// hit/miss counters.
func (c *Cache) Peek(lineAddr uint64) bool {
	setIdx, tag := c.index(lineAddr)
	base := int(setIdx) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].Valid && c.lines[base+w].Tag == tag {
			return true
		}
	}
	return false
}

// Insert places lineAddr for app, selecting a victim according to the
// current partition, and returns the displaced line (if any). Inserting a
// line that is already present only refreshes its LRU position.
func (c *Cache) Insert(app int, lineAddr uint64, dirty bool) Victim {
	setIdx, tag := c.index(lineAddr)
	base := int(setIdx) * c.ways

	// Already present (e.g., racing fill): refresh.
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.Valid && ln.Tag == tag {
			ln.Dirty = ln.Dirty || dirty
			c.touch(base, uint8(w))
			return Victim{}
		}
	}

	w := c.victimWay(base, app)
	ln := &c.lines[base+int(w)]
	var v Victim
	if ln.Valid {
		v = Victim{
			Valid:    true,
			Dirty:    ln.Dirty,
			App:      ln.App,
			LineAddr: c.lineAddr(setIdx, ln.Tag),
		}
		c.occupied[ln.App]--
	}
	*ln = Line{Tag: tag, App: int16(app), Valid: true, Dirty: dirty}
	c.occupied[app]++
	c.touch(base, w)
	return v
}

// victimWay picks the way to evict for an insertion by app. base is the
// set's offset into the flat slabs.
func (c *Cache) victimWay(base int, app int) uint8 {
	lru := c.lru[base : base+c.ways]
	// Invalid lines first, LRU-most preferred.
	for i := c.ways - 1; i >= 0; i-- {
		w := lru[i]
		if !c.lines[base+int(w)].Valid {
			return w
		}
	}
	if c.alloc == nil || app >= len(c.alloc) {
		return lru[c.ways-1] // global LRU
	}
	// Partitioned: count per-app occupancy in this set.
	var occ [64]int
	for w := 0; w < c.ways; w++ {
		a := c.lines[base+w].App
		if a >= 0 && int(a) < len(occ) {
			occ[a]++
		}
	}
	if occ[app] >= c.alloc[app] && c.alloc[app] > 0 {
		// App is at/over its quota: evict its own LRU line.
		for i := c.ways - 1; i >= 0; i-- {
			w := lru[i]
			if int(c.lines[base+int(w)].App) == app {
				return w
			}
		}
	}
	// Under quota (or quota zero): evict LRU line of the most over-quota
	// app; fall back to global LRU.
	for i := c.ways - 1; i >= 0; i-- {
		w := lru[i]
		a := int(c.lines[base+int(w)].App)
		if a >= 0 && a < len(c.alloc) && occ[a] > c.alloc[a] {
			return w
		}
	}
	for i := c.ways - 1; i >= 0; i-- {
		w := lru[i]
		a := int(c.lines[base+int(w)].App)
		if a != app {
			return w
		}
	}
	return lru[c.ways-1]
}

// touch moves way w to the MRU position of the set at base.
func (c *Cache) touch(base int, w uint8) {
	lru := c.lru[base : base+c.ways]
	// Find w in the order and rotate it to the front.
	for i, x := range lru {
		if x == w {
			copy(lru[1:i+1], lru[:i])
			lru[0] = w
			return
		}
	}
}

// Hits returns the hit count for app.
func (c *Cache) Hits(app int) uint64 { return c.hits[app] }

// Misses returns the miss count for app.
func (c *Cache) Misses(app int) uint64 { return c.misses[app] }

// Occupancy returns the number of valid lines owned by app across the
// whole cache.
func (c *Cache) Occupancy(app int) uint64 { return c.occupied[app] }

// ResetStats clears hit/miss counters (occupancy is preserved).
func (c *Cache) ResetStats() {
	for i := range c.hits {
		c.hits[i], c.misses[i] = 0, 0
	}
}
