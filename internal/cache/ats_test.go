package cache

import (
	"testing"
	"testing/quick"

	"asmsim/internal/rng"
)

// TestATSMirrorsDedicatedCache is the central property of the auxiliary
// tag store: for any access stream, an unsampled ATS must report exactly
// the hits a dedicated LRU cache of the same geometry would produce — the
// ATS is by definition "the state of the cache had the application been
// running alone" (Section 3.2).
func TestATSMirrorsDedicatedCache(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		ats := NewAuxTagStore(16, 4, 0)
		c := New(16, 4, 1)
		r := rng.New(seed)
		for i := 0; i < 2000; i++ {
			line := r.Uint64n(256)
			sampled, atsHit, _ := ats.Access(line)
			if !sampled {
				return false // unsampled ATS covers every set
			}
			cacheHit := c.Lookup(0, line, false)
			if !cacheHit {
				c.Insert(0, line, false)
			}
			if atsHit != cacheHit {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// TestATSStackPositions checks the LRU-stack property: a hit at stack
// position p would be a hit in any cache with more than p ways, so
// HitFractionAtWays must be non-decreasing and reach HitFraction at full
// associativity.
func TestATSStackPositions(t *testing.T) {
	ats := NewAuxTagStore(8, 8, 0)
	r := rng.New(3)
	for i := 0; i < 5000; i++ {
		ats.Access(r.Uint64n(128))
	}
	prev := 0.0
	for n := 1; n <= 8; n++ {
		f := ats.HitFractionAtWays(n)
		if f < prev {
			t.Fatalf("hit fraction decreased at %d ways: %v < %v", n, f, prev)
		}
		prev = f
	}
	if prev != ats.HitFraction() {
		t.Fatalf("full-ways fraction %v != overall %v", prev, ats.HitFraction())
	}
}

// TestATSStackPositionMeaning verifies the stack-position semantics with
// a hand-built sequence: accessing A, B, A makes the second A a hit at
// position 1 (B is MRU at that point).
func TestATSStackPositionMeaning(t *testing.T) {
	ats := NewAuxTagStore(1, 4, 0)
	ats.Access(0) // miss
	ats.Access(1) // miss
	_, hit, pos := ats.Access(0)
	if !hit || pos != 1 {
		t.Fatalf("hit=%v pos=%d, want hit at position 1", hit, pos)
	}
	// Position-1 hits need at least 2 ways.
	if ats.HitFractionAtWays(1) != 0 {
		t.Fatal("1-way cache would have missed")
	}
	if ats.HitFractionAtWays(2) == 0 {
		t.Fatal("2-way cache would have hit")
	}
}

func TestATSSampling(t *testing.T) {
	ats := NewAuxTagStore(16, 4, 4) // every 4th set
	if !ats.Sampled() || ats.SampledSets() != 4 {
		t.Fatal("sampling misconfigured")
	}
	sampledSeen, unsampledSeen := false, false
	for set := uint64(0); set < 16; set++ {
		sampled, _, _ := ats.Access(set)
		if set%4 == 0 {
			if !sampled {
				t.Fatalf("set %d should be sampled", set)
			}
			sampledSeen = true
		} else {
			if sampled {
				t.Fatalf("set %d should not be sampled", set)
			}
			unsampledSeen = true
		}
	}
	if !sampledSeen || !unsampledSeen {
		t.Fatal("test did not exercise both kinds of sets")
	}
	if ats.Probes() != 4 {
		t.Fatalf("probes %d, want 4", ats.Probes())
	}
}

// TestATSSampledFractionApproximatesFull: the Section 4.4 premise — the
// sampled hit fraction tracks the full-ATS hit fraction for a homogeneous
// access stream.
func TestATSSampledFractionApproximatesFull(t *testing.T) {
	full := NewAuxTagStore(256, 4, 0)
	sampled := NewAuxTagStore(256, 4, 32)
	r := rng.New(11)
	for i := 0; i < 200000; i++ {
		line := r.Uint64n(2048)
		full.Access(line)
		sampled.Access(line)
	}
	f, s := full.HitFraction(), sampled.HitFraction()
	if diff := f - s; diff > 0.05 || diff < -0.05 {
		t.Fatalf("sampled fraction %v deviates from full %v", s, f)
	}
}

func TestATSResetStatsKeepsDirectory(t *testing.T) {
	ats := NewAuxTagStore(4, 2, 0)
	ats.Access(0)
	ats.ResetStats()
	if ats.Probes() != 0 || ats.Hits() != 0 {
		t.Fatal("stats not cleared")
	}
	_, hit, _ := ats.Access(0)
	if !hit {
		t.Fatal("directory must stay warm across ResetStats")
	}
}

func TestATSMissFraction(t *testing.T) {
	ats := NewAuxTagStore(4, 2, 0)
	ats.Access(0)
	ats.Access(0)
	if ats.HitFraction() != 0.5 || ats.MissFraction() != 0.5 {
		t.Fatalf("fractions %v/%v", ats.HitFraction(), ats.MissFraction())
	}
}

func TestATSBadSamplingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-dividing sampledSets must panic")
		}
	}()
	NewAuxTagStore(16, 4, 3)
}

func TestATSPositionHitsCopy(t *testing.T) {
	ats := NewAuxTagStore(4, 2, 0)
	ats.Access(0)
	ats.Access(0)
	p := ats.PositionHits()
	p[0] = 999
	if ats.PositionHits()[0] == 999 {
		t.Fatal("PositionHits must return a copy")
	}
}
