package cache

import (
	"testing"

	"asmsim/internal/rng"
)

func BenchmarkCacheLookupHit(b *testing.B) {
	c := New(2048, 16, 4)
	for line := uint64(0); line < 1024; line++ {
		c.Insert(0, line, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(0, uint64(i)&1023, false)
	}
}

func BenchmarkCacheInsertEvict(b *testing.B) {
	c := New(2048, 16, 4)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(int(uint(i)%4), r.Uint64n(1<<22), false)
	}
}

func BenchmarkCacheInsertPartitioned(b *testing.B) {
	c := New(2048, 16, 4)
	c.SetPartition([]int{4, 4, 4, 4})
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(int(uint(i)%4), r.Uint64n(1<<22), false)
	}
}

func BenchmarkATSAccessFull(b *testing.B) {
	a := NewAuxTagStore(2048, 16, 0)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Access(r.Uint64n(1 << 22))
	}
}

func BenchmarkATSAccessSampled(b *testing.B) {
	a := NewAuxTagStore(2048, 16, 64)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Access(r.Uint64n(1 << 22))
	}
}

func BenchmarkPollutionFilter(b *testing.B) {
	f := NewPollutionFilter(32768, 4)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := r.Uint64()
		f.Add(x)
		f.Test(x ^ 1)
	}
}

func BenchmarkMSHR(b *testing.B) {
	m := NewMSHR(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := uint64(i) & 15
		if !m.Allocate(line, uint64(i), false) {
			m.Complete(line)
		}
	}
}
