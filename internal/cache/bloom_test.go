package cache

import (
	"testing"
	"testing/quick"

	"asmsim/internal/rng"
)

// TestBloomNoFalseNegatives: Bloom filters may report false positives but
// never false negatives — every added address must test positive.
func TestBloomNoFalseNegatives(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		f := NewPollutionFilter(1024, 4)
		r := rng.New(seed)
		var added []uint64
		for i := 0; i < 50; i++ {
			a := r.Uint64()
			f.Add(a)
			added = append(added, a)
		}
		for _, a := range added {
			if !f.Test(a) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBloomEmptyTestsNegative(t *testing.T) {
	f := NewPollutionFilter(1024, 4)
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		if f.Test(r.Uint64()) {
			t.Fatal("empty filter returned positive")
		}
	}
}

// TestBloomFalsePositiveRateGrowsWhenShrunk reproduces the property the
// paper's Figure 3 depends on: an under-provisioned pollution filter
// produces many more false classifications.
func TestBloomFalsePositiveRateGrowsWhenShrunk(t *testing.T) {
	rate := func(bits int) float64 {
		f := NewPollutionFilter(bits, 4)
		r := rng.New(7)
		for i := 0; i < 2000; i++ {
			f.Add(r.Uint64())
		}
		probe := rng.New(99)
		fp := 0
		const n = 10000
		for i := 0; i < n; i++ {
			if f.Test(probe.Uint64()) {
				fp++
			}
		}
		return float64(fp) / n
	}
	small, large := rate(1024), rate(1<<20)
	if small < 0.5 {
		t.Fatalf("saturated small filter should mostly false-positive, got %v", small)
	}
	if large > 0.01 {
		t.Fatalf("large filter false-positive rate %v too high", large)
	}
}

func TestBloomClear(t *testing.T) {
	f := NewPollutionFilter(256, 2)
	f.Add(42)
	if f.Adds() != 1 {
		t.Fatalf("adds %d", f.Adds())
	}
	f.Clear()
	if f.Test(42) || f.Adds() != 0 {
		t.Fatal("clear failed")
	}
}

func TestBloomRemove(t *testing.T) {
	f := NewPollutionFilter(1<<16, 4)
	f.Add(42)
	f.Remove(42)
	if f.Test(42) {
		t.Fatal("removed address still positive")
	}
}

func TestBloomSizeRounding(t *testing.T) {
	f := NewPollutionFilter(100, 4)
	if f.Bits()%64 != 0 || f.Bits() < 100 {
		t.Fatalf("bits %d", f.Bits())
	}
}

func TestBloomHashClamping(t *testing.T) {
	f := NewPollutionFilter(64, 100) // hashes clamped to 8
	f.Add(1)
	if !f.Test(1) {
		t.Fatal("clamped-hash filter broken")
	}
	g := NewPollutionFilter(64, 0) // clamped to 1
	g.Add(2)
	if !g.Test(2) {
		t.Fatal("min-hash filter broken")
	}
}

func TestBloomPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size filter must panic")
		}
	}()
	NewPollutionFilter(0, 4)
}
