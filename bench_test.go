package asmsim

// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation, each regenerating the corresponding artifact through the
// experiment registry at a reduced ("bench") scale and logging the result
// table. Run everything with:
//
//	go test -bench=. -benchmem
//
// Paper-scale sweeps are available via `go run ./cmd/experiments -run
// <id> -full`. The bench scale trades workload count and quantum length
// for runtime; the code paths are identical, and the *shape* of each
// result (who wins, by roughly what factor) is preserved.

import (
	"context"
	"testing"

	"asmsim/internal/exp"
)

// benchScale is smaller than exp.Quick so the whole suite finishes in
// minutes on one core.
func benchScale() exp.Scale {
	return exp.Scale{
		Workloads:      3,
		WarmupQuanta:   1,
		MeasuredQuanta: 2,
		Quantum:        1_000_000,
		Epoch:          10_000,
		Seed:           42,
	}
}

// benchRun regenerates one experiment per iteration and logs the table
// once.
func benchRun(b *testing.B, id string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		// Fresh cache per iteration: alone-run curves are shared within
		// one experiment regeneration, exactly as cmd/experiments runs it.
		scIter := sc
		scIter.AloneCache = NewAloneCurveCache()
		table, err := e.Run(context.Background(), scIter)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + table.String())
		}
	}
}

// BenchmarkFig1CARCorrelation regenerates Figure 1: shared-cache access
// rate as a proxy for performance (app + hog sweeps, Pearson correlation).
func BenchmarkFig1CARCorrelation(b *testing.B) { benchRun(b, "fig1") }

// BenchmarkFig2ErrorUnsampled regenerates Figure 2: per-benchmark
// slowdown estimation error with unsampled structures (paper: FST 18.5%,
// PTCA 14.7%, ASM 9.0%).
func BenchmarkFig2ErrorUnsampled(b *testing.B) { benchRun(b, "fig2") }

// BenchmarkFig3ErrorSampled regenerates Figure 3: error with a 64-set
// sampled ATS (paper: FST 29.4%, PTCA 40.4%, ASM 9.9%).
func BenchmarkFig3ErrorSampled(b *testing.B) { benchRun(b, "fig3") }

// BenchmarkFig4ErrorDistribution regenerates Figure 4: the error CDF
// (paper: 95.25% of ASM estimates within 20%, max error 36%).
func BenchmarkFig4ErrorDistribution(b *testing.B) { benchRun(b, "fig4") }

// BenchmarkFig5Prefetching regenerates Figure 5: error with a stride
// prefetcher (paper: FST 20%, PTCA 15%, ASM 7.5%).
func BenchmarkFig5Prefetching(b *testing.B) { benchRun(b, "fig5") }

// BenchmarkFig6LatencyDistribution regenerates Figure 6: alone
// miss-service-time distributions, actual vs estimated, +/- sampling.
func BenchmarkFig6LatencyDistribution(b *testing.B) { benchRun(b, "fig6") }

// BenchmarkDatabaseAccuracy regenerates the Section 6 database-workload
// accuracy result (paper: FST 27%, PTCA 12%, ASM 4%).
func BenchmarkDatabaseAccuracy(b *testing.B) { benchRun(b, "dbacc") }

// BenchmarkFig7CoreCount regenerates Figure 7: error vs core count.
func BenchmarkFig7CoreCount(b *testing.B) { benchRun(b, "fig7") }

// BenchmarkFig8CacheSize regenerates Figure 8: error vs cache capacity.
func BenchmarkFig8CacheSize(b *testing.B) { benchRun(b, "fig8") }

// BenchmarkTable3QuantumEpoch regenerates Table 3: ASM error vs quantum
// and epoch lengths.
func BenchmarkTable3QuantumEpoch(b *testing.B) { benchRun(b, "tab3") }

// BenchmarkMISEComparison regenerates the Section 6.4 result: memory-only
// epoch aggregation (MISE, paper 22%) vs ASM (paper 9.9%).
func BenchmarkMISEComparison(b *testing.B) { benchRun(b, "mise") }

// BenchmarkFig9ASMCache regenerates Figure 9: slowdown-aware cache
// partitioning vs NoPart/UCP/MCFQ across core counts.
func BenchmarkFig9ASMCache(b *testing.B) { benchRun(b, "fig9") }

// BenchmarkFig10ASMMem regenerates Figure 10: slowdown-aware bandwidth
// partitioning vs FRFCFS/PARBS/TCM across core counts.
func BenchmarkFig10ASMMem(b *testing.B) { benchRun(b, "fig10") }

// BenchmarkASMCacheMem regenerates the Section 7.2.2 coordinated scheme
// result vs PARBS+UCP on 16 cores.
func BenchmarkASMCacheMem(b *testing.B) { benchRun(b, "cachemem") }

// BenchmarkFig11ASMQoS regenerates Figure 11: soft slowdown guarantees
// for h264ref.
func BenchmarkFig11ASMQoS(b *testing.B) { benchRun(b, "fig11") }

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationEpochAssignment compares probabilistic vs round-robin
// epoch assignment (Section 4.2).
func BenchmarkAblationEpochAssignment(b *testing.B) { benchRun(b, "abl-epoch") }

// BenchmarkAblationQueueingCorrection toggles the Section 4.3 queueing
// term.
func BenchmarkAblationQueueingCorrection(b *testing.B) { benchRun(b, "abl-queueing") }

// BenchmarkAblationATSBudget sweeps the auxiliary-tag-store sampling
// budget (Section 4.4).
func BenchmarkAblationATSBudget(b *testing.B) { benchRun(b, "abl-ats") }

// BenchmarkAblationCARn validates CAR_n predictions against enforced
// allocations (Section 7.1).
func BenchmarkAblationCARn(b *testing.B) { benchRun(b, "abl-carn") }

// BenchmarkAblationModels compares all five estimators on one run
// (per-request vs aggregate x memory-only vs memory+cache).
func BenchmarkAblationModels(b *testing.B) { benchRun(b, "abl-models") }

// BenchmarkSimulatorThroughput measures raw simulation speed (cycles per
// second) for the default 4-core system — the substrate cost every
// experiment above pays.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Quantum = 100_000
	specs := make([]AppSpec, 0, 4)
	for _, n := range []string{"mcf", "libquantum", "bzip2", "h264ref"} {
		s, _ := BenchmarkByName(n)
		specs = append(specs, s)
	}
	sys, err := NewSystem(cfg, specs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.RunQuanta(1)
	}
	b.ReportMetric(float64(cfg.Quantum), "cycles/op")
}
